//! The `.cpk` streaming frame format (`CPKF`) — CodePack as a production
//! container.
//!
//! A [`CodePackImage`](crate::CodePackImage) is an in-memory artifact bound
//! to one text section; the frame format is the wire/file form of the same
//! compression, shaped like a production codec container (lz4-frame style):
//! a self-describing header, a sequence of independently decodable **group
//! chunks**, and integrity trailers. CodePack's 2-block compression groups
//! are independently decodable by construction (paper §3.1), which is
//! exactly what makes the chunks parallelizable: pack and unpack both fan
//! out over group boundaries and remain **byte-identical at any worker
//! count**.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CPKF" | version u16 | flags u16 | content_size u64
//! high_len u16 | low_len u16 | high dict entries (u16 each) | low dict entries
//! header_crc32 u32                          (over every preceding byte)
//! per group (ceil(content_size/4/32) chunks):
//!   payload_len u32 | first_len u16 | payload bytes | integrity trailer
//! end marker u32 = 0
//! trailer_crc32 u32    (over all chunk (payload_len, first_len) pairs
//!                       and content_size — the frame's structural skeleton)
//! ```
//!
//! `flags` bits 0–1 select the per-chunk integrity trailer, reusing the
//! fault model's [`StreamIntegrity`] machinery: `0` none, `1` parity (one
//! bit per payload byte, packed LSB-first), `2` CRC-32 of the payload.
//! Bits 2–15 are reserved and must be zero. `first_len` is the byte length
//! of the group's first compression block inside the payload, so each block
//! can be decoded independently without re-walking the bitstream.
//!
//! The trailing CRC covers chunk *metadata*, not payload bytes: payload
//! corruption is caught per chunk (by the integrity trailer or by the codec
//! itself as a [`DecompressError`]), which keeps verification inside the
//! parallel workers instead of forcing a serial whole-stream scan.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use codepack_mem::{crc32, StreamIntegrity};

use crate::dict::Dictionary;
use crate::fastdecode::{DecodeBackend, FastDecoder};
use crate::image::{decode_block_bytes, encode_block, CompressionConfig};
use crate::layout::{BLOCK_INSNS, GROUP_INSNS, HIGH_DICT_CAPACITY, LOW_DICT_CAPACITY};
use crate::DecompressError;

/// Magic bytes identifying a `.cpk` frame (distinct from the ROM's `CPK1`).
pub const FRAME_MAGIC: [u8; 4] = *b"CPKF";
/// The frame format version this build reads and writes.
pub const FRAME_VERSION: u16 = 1;
/// Upper bound on one group chunk's payload. A compression group is two
/// blocks of at most 77 bytes each (16 instructions of worst-case 19+19-bit
/// codewords, or 65 bytes with the raw-block fallback), so anything larger
/// is structurally impossible and rejected before buffering.
pub const MAX_GROUP_PAYLOAD: u32 = 512;

/// Bits 0–1 of `flags`: the integrity trailer mode.
const FLAG_INTEGRITY_MASK: u16 = 0b11;

const GROUP_WORDS: usize = GROUP_INSNS as usize;
const BLOCK_WORDS: usize = BLOCK_INSNS as usize;

/// Where in a frame a checksum failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameRegion {
    /// The header CRC (magic through dictionaries).
    Header,
    /// One group chunk's integrity trailer.
    Group(u32),
    /// The structural trailer CRC at the end of the frame.
    Trailer,
}

impl fmt::Display for FrameRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameRegion::Header => write!(f, "header"),
            FrameRegion::Group(g) => write!(f, "group {g}"),
            FrameRegion::Trailer => write!(f, "frame trailer"),
        }
    }
}

/// Error reading a `.cpk` frame. Every malformed input maps to one of these
/// variants — the parser never panics, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the structure it declares.
    Truncated {
        /// Byte offset where more data was needed.
        at: u64,
    },
    /// The input does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The frame was written by an incompatible format version.
    VersionSkew {
        /// The version the frame declares.
        version: u16,
    },
    /// Reserved flag bits are set (or the integrity code is unknown).
    UnknownFlags {
        /// The flags field as stored.
        flags: u16,
    },
    /// A checksum did not match the covered bytes.
    ChecksumMismatch {
        /// Which checksum failed.
        region: FrameRegion,
    },
    /// A group payload failed to decode through the codec.
    Corrupt {
        /// The group whose payload is bad.
        group: u32,
        /// The codec's error.
        source: DecompressError,
    },
    /// A declared size or structural invariant is internally inconsistent.
    Inconsistent(&'static str),
    /// The underlying reader or writer failed.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { at } => write!(f, "frame truncated at byte {at}"),
            FrameError::BadMagic => write!(f, "not a .cpk frame (bad magic)"),
            FrameError::VersionSkew { version } => write!(
                f,
                "unsupported frame version {version} (this build reads version {FRAME_VERSION})"
            ),
            FrameError::UnknownFlags { flags } => write!(f, "unknown frame flags {flags:#06x}"),
            FrameError::ChecksumMismatch { region } => {
                write!(f, "checksum mismatch in {region}")
            }
            FrameError::Corrupt { group, source } => {
                write!(f, "group {group} does not decode: {source}")
            }
            FrameError::Inconsistent(what) => write!(f, "frame inconsistent: {what}"),
            FrameError::Io(what) => write!(f, "frame i/o error: {what}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<FrameError> for io::Error {
    /// Wraps a frame error so it can travel through `io::Error` without
    /// losing identity: the original [`FrameError`] rides along as the
    /// error's source and [`FrameError::from_io_error`] recovers it.
    /// Truncation maps to [`io::ErrorKind::UnexpectedEof`] (it *is* an
    /// unexpected end of input); everything else is `InvalidData`.
    fn from(e: FrameError) -> io::Error {
        let kind = match &e {
            FrameError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e)
    }
}

impl FrameError {
    /// Recovers the original frame error from an `io::Error` produced by
    /// [`From<FrameError>`] (directly or through a nested [`FrameReader`]).
    /// An `io::Error` that does not carry a `FrameError` becomes
    /// [`FrameError::Io`] with the error's message — the round trip
    /// `FrameError -> io::Error -> FrameError` is the identity for every
    /// variant.
    pub fn from_io_error(e: &io::Error) -> FrameError {
        match e.get_ref().and_then(|s| s.downcast_ref::<FrameError>()) {
            Some(frame_err) => frame_err.clone(),
            None => FrameError::Io(e.to_string()),
        }
    }
}

/// Knobs of [`pack_frame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackOptions {
    /// Per-chunk integrity trailer (default CRC-32).
    pub integrity: StreamIntegrity,
    /// Worker threads encoding group chunks (1 = fully serial; output is
    /// byte-identical at any count).
    pub workers: usize,
    /// The codec configuration (dictionaries, fallback, …).
    pub compression: CompressionConfig,
}

impl Default for PackOptions {
    fn default() -> PackOptions {
        PackOptions {
            integrity: StreamIntegrity::Crc32,
            workers: 1,
            compression: CompressionConfig::default(),
        }
    }
}

/// Knobs of [`unpack_frame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnpackOptions {
    /// The functional decoder (fast = table-driven, scalar = reference).
    pub backend: DecodeBackend,
    /// Worker threads decoding group chunks (1 = fully serial; output is
    /// byte-identical at any count).
    pub workers: usize,
}

impl Default for UnpackOptions {
    fn default() -> UnpackOptions {
        UnpackOptions {
            backend: DecodeBackend::Fast,
            workers: 1,
        }
    }
}

/// Runs `n` index jobs on `workers` threads with a work-stealing counter —
/// the matrix runner's deterministic pool shape: results land in
/// per-index [`OnceLock`] slots and are collected in index order, so the
/// outcome is identical at any worker count.
fn run_jobs<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(&job).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let done = job(i);
                let _ = slots[i].set(done);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Builds the two dictionaries exactly as [`CodePackImage::compress`] does
/// (over the zero-padded text), so frame payloads are byte-identical to the
/// image's compressed stream.
///
/// [`CodePackImage::compress`]: crate::CodePackImage::compress
fn build_dicts(padded: &[u32], config: &CompressionConfig) -> (Dictionary, Dictionary) {
    let high = Dictionary::build(
        padded.iter().map(|&w| (w >> 16) as u16),
        HIGH_DICT_CAPACITY,
        config.dict_min_count,
        false,
    );
    let low = Dictionary::build(
        padded.iter().map(|&w| w as u16),
        LOW_DICT_CAPACITY,
        config.dict_min_count,
        config.pin_low_zero,
    );
    (high, low)
}

/// One encoded group: the concatenated two-block payload and the first
/// block's byte length within it.
struct GroupChunk {
    payload: Vec<u8>,
    first_len: u16,
}

fn encode_group(
    words: &[u32],
    high: &Dictionary,
    low: &Dictionary,
    config: &CompressionConfig,
) -> GroupChunk {
    debug_assert_eq!(words.len(), GROUP_WORDS);
    let mut payload = Vec::new();
    let mut first_len = 0u16;
    for (i, block) in words.chunks_exact(BLOCK_WORDS).enumerate() {
        let (bytes, _, _, _) = encode_block(block, high, low, config);
        if i == 0 {
            first_len = u16::try_from(bytes.len()).expect("block fits in u16 bytes");
        }
        payload.extend_from_slice(&bytes);
    }
    GroupChunk { payload, first_len }
}

/// Computes a chunk's integrity trailer. Parity packs one bit per payload
/// byte, LSB-first within each trailer byte; CRC-32 is the fault model's
/// bitwise [`crc32`] over the payload, little-endian.
fn integrity_trailer(integrity: StreamIntegrity, payload: &[u8]) -> Vec<u8> {
    match integrity {
        StreamIntegrity::None => Vec::new(),
        StreamIntegrity::Parity => {
            let mut trailer = vec![0u8; payload.len().div_ceil(8)];
            for (i, byte) in payload.iter().enumerate() {
                trailer[i / 8] |= ((byte.count_ones() as u8) & 1) << (i % 8);
            }
            trailer
        }
        StreamIntegrity::Crc32 => crc32(payload).to_le_bytes().to_vec(),
    }
}

fn integrity_flag(integrity: StreamIntegrity) -> u16 {
    match integrity {
        StreamIntegrity::None => 0,
        StreamIntegrity::Parity => 1,
        StreamIntegrity::Crc32 => 2,
    }
}

fn integrity_from_flags(flags: u16) -> Result<StreamIntegrity, FrameError> {
    if flags & !FLAG_INTEGRITY_MASK != 0 {
        return Err(FrameError::UnknownFlags { flags });
    }
    match flags & FLAG_INTEGRITY_MASK {
        0 => Ok(StreamIntegrity::None),
        1 => Ok(StreamIntegrity::Parity),
        2 => Ok(StreamIntegrity::Crc32),
        _ => Err(FrameError::UnknownFlags { flags }),
    }
}

/// Packs a text section into a `.cpk` frame.
///
/// Unlike [`CodePackImage::compress`], the empty text is a valid (empty)
/// frame. Group chunks are encoded on `opts.workers` threads; the output is
/// byte-identical at any worker count, and the concatenated chunk payloads
/// equal the image's compressed stream for the same text and configuration.
///
/// [`CodePackImage::compress`]: crate::CodePackImage::compress
///
/// ```
/// use codepack_core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};
/// let text: Vec<u32> = (0..100).map(|i| 0x2402_0000 | (i % 7)).collect();
/// let frame = pack_frame(&text, &PackOptions::default());
/// assert_eq!(unpack_frame(&frame, &UnpackOptions::default()).unwrap(), text);
/// ```
pub fn pack_frame(text: &[u32], opts: &PackOptions) -> Vec<u8> {
    let padded_len = text.len().div_ceil(GROUP_WORDS) * GROUP_WORDS;
    let mut padded = text.to_vec();
    padded.resize(padded_len, 0);
    let (high, low) = build_dicts(&padded, &opts.compression);

    let groups: Vec<&[u32]> = padded.chunks_exact(GROUP_WORDS).collect();
    let chunks = run_jobs(groups.len(), opts.workers, |g| {
        encode_group(groups[g], &high, &low, &opts.compression)
    });

    let content_size = (text.len() as u64) * 4;
    let mut out = Vec::new();
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&integrity_flag(opts.integrity).to_le_bytes());
    out.extend_from_slice(&content_size.to_le_bytes());
    out.extend_from_slice(&high.len().to_le_bytes());
    out.extend_from_slice(&low.len().to_le_bytes());
    for (_, v) in high.iter() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for (_, v) in low.iter() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&crc32(&out).to_le_bytes());

    let mut meta = Vec::new();
    for chunk in &chunks {
        let payload_len = chunk.payload.len() as u32;
        out.extend_from_slice(&payload_len.to_le_bytes());
        out.extend_from_slice(&chunk.first_len.to_le_bytes());
        meta.extend_from_slice(&payload_len.to_le_bytes());
        meta.extend_from_slice(&chunk.first_len.to_le_bytes());
        out.extend_from_slice(&chunk.payload);
        out.extend_from_slice(&integrity_trailer(opts.integrity, &chunk.payload));
    }
    meta.extend_from_slice(&content_size.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&crc32(&meta).to_le_bytes());
    out
}

/// Byte cursor over an in-memory frame.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated {
            at: self.pos as u64,
        })?;
        if end > self.bytes.len() {
            return Err(FrameError::Truncated {
                at: self.pos as u64,
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// The validated fields of a frame header.
struct Header {
    integrity: StreamIntegrity,
    content_size: u64,
    high: Dictionary,
    low: Dictionary,
}

impl Header {
    fn n_insns(&self) -> u32 {
        (self.content_size / 4) as u32
    }

    fn n_groups(&self) -> usize {
        (self.n_insns() as usize).div_ceil(GROUP_WORDS)
    }
}

fn parse_header(c: &mut Cursor<'_>) -> Result<Header, FrameError> {
    if c.take(4)? != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = c.u16()?;
    if version != FRAME_VERSION {
        return Err(FrameError::VersionSkew { version });
    }
    let flags = c.u16()?;
    let integrity = integrity_from_flags(flags)?;
    let content_size = c.u64()?;
    let high_len = c.u16()?;
    let low_len = c.u16()?;
    // The capacity bound is structural — it caps how many entry words the
    // parser will consume before it can even locate the header CRC.
    if high_len > HIGH_DICT_CAPACITY || low_len > LOW_DICT_CAPACITY {
        return Err(FrameError::Inconsistent(
            "dictionary length exceeds its capacity",
        ));
    }
    let high: Vec<u16> = (0..high_len).map(|_| c.u16()).collect::<Result<_, _>>()?;
    let low: Vec<u16> = (0..low_len).map(|_| c.u16()).collect::<Result<_, _>>()?;
    let covered = &c.bytes[..c.pos];
    let stored = c.u32()?;
    if crc32(covered) != stored {
        return Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Header,
        });
    }
    // Semantic checks run only on a CRC-clean header: damage upstream is
    // reported as a checksum mismatch, not a misleading semantic error.
    if !content_size.is_multiple_of(4) {
        return Err(FrameError::Inconsistent(
            "content size is not a whole number of instructions",
        ));
    }
    if content_size / 4 > u64::from(u32::MAX) {
        return Err(FrameError::Inconsistent(
            "content size exceeds the 32-bit instruction count",
        ));
    }
    Ok(Header {
        integrity,
        content_size,
        high: Dictionary::from_ranked_values(high),
        low: Dictionary::from_ranked_values(low),
    })
}

/// Reads one chunk's framing (`payload_len`, `first_len`, payload, trailer)
/// and appends its metadata to `meta`.
fn scan_chunk<'a>(
    c: &mut Cursor<'a>,
    integrity: StreamIntegrity,
    meta: &mut Vec<u8>,
) -> Result<(&'a [u8], u16, &'a [u8]), FrameError> {
    let payload_len = c.u32()?;
    if payload_len == 0 {
        return Err(FrameError::Inconsistent("zero-length group chunk"));
    }
    if payload_len > MAX_GROUP_PAYLOAD {
        return Err(FrameError::Inconsistent(
            "group chunk larger than the format maximum",
        ));
    }
    let first_len = c.u16()?;
    if u32::from(first_len) > payload_len {
        return Err(FrameError::Inconsistent(
            "first-block length exceeds the group payload",
        ));
    }
    meta.extend_from_slice(&payload_len.to_le_bytes());
    meta.extend_from_slice(&first_len.to_le_bytes());
    let payload = c.take(payload_len as usize)?;
    let trailer = c.take(integrity.overhead_bytes(payload_len) as usize)?;
    Ok((payload, first_len, trailer))
}

/// Shared state of the group-decode workers: integrity mode, dictionaries,
/// and the optional table-driven decoder.
struct GroupDecoder<'a> {
    integrity: StreamIntegrity,
    high: &'a Dictionary,
    low: &'a Dictionary,
    fast: Option<&'a FastDecoder>,
}

impl GroupDecoder<'_> {
    /// Decodes one group chunk: integrity check, then both blocks through
    /// the selected backend.
    fn decode(
        &self,
        payload: &[u8],
        first_len: u16,
        trailer: &[u8],
        group: u32,
    ) -> Result<[u32; GROUP_WORDS], FrameError> {
        if integrity_trailer(self.integrity, payload) != trailer {
            return Err(FrameError::ChecksumMismatch {
                region: FrameRegion::Group(group),
            });
        }
        let decode = |bytes: &[u8]| -> Result<[u32; BLOCK_WORDS], FrameError> {
            match self.fast {
                Some(f) => f.decode_block(bytes),
                None => decode_block_bytes(bytes, self.high, self.low),
            }
            .map_err(|source| FrameError::Corrupt { group, source })
        };
        let first = decode(&payload[..usize::from(first_len)])?;
        let second = decode(&payload[usize::from(first_len)..])?;
        let mut words = [0u32; GROUP_WORDS];
        words[..BLOCK_WORDS].copy_from_slice(&first);
        words[BLOCK_WORDS..].copy_from_slice(&second);
        Ok(words)
    }
}

/// The structural skeleton of a frame, as [`scan_frame`] reports it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameSummary {
    /// The original text size in bytes, as the header declares.
    pub content_size: u64,
    /// The per-chunk integrity trailer mode.
    pub integrity: StreamIntegrity,
    /// Per-group compressed payload sizes, in group order.
    pub group_payload_lens: Vec<u32>,
}

/// Scans a frame's structure — header, chunk framing, end marker, both
/// structural CRCs — **without decoding any payload**. This is the cheap
/// half of frame validation (the service's profile endpoint uses it to
/// report per-group compressed sizes); [`unpack_frame`] adds the per-group
/// integrity and codec checks.
///
/// # Errors
///
/// Any [`FrameError`] the frame skeleton can produce; payload corruption
/// that only the trailer or codec would catch is *not* detected here.
pub fn scan_frame(frame: &[u8]) -> Result<FrameSummary, FrameError> {
    let mut c = Cursor {
        bytes: frame,
        pos: 0,
    };
    let header = parse_header(&mut c)?;
    let mut meta = Vec::new();
    let mut lens = Vec::with_capacity(header.n_groups());
    for _ in 0..header.n_groups() {
        let (payload, _, _) = scan_chunk(&mut c, header.integrity, &mut meta)?;
        lens.push(payload.len() as u32);
    }
    if c.u32()? != 0 {
        return Err(FrameError::Inconsistent("missing end-of-frame marker"));
    }
    meta.extend_from_slice(&header.content_size.to_le_bytes());
    if crc32(&meta) != c.u32()? {
        return Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Trailer,
        });
    }
    if c.pos != frame.len() {
        return Err(FrameError::Inconsistent("trailing bytes after frame"));
    }
    Ok(FrameSummary {
        content_size: header.content_size,
        integrity: header.integrity,
        group_payload_lens: lens,
    })
}

/// Unpacks a `.cpk` frame back to the original text.
///
/// The frame structure is scanned serially (cheap: lengths and checksums of
/// the skeleton), then group chunks are verified and decoded on
/// `opts.workers` threads; on multiple failures the error of the
/// lowest-numbered group is returned, so the result — success or error — is
/// identical at any worker count.
///
/// # Errors
///
/// Returns a [`FrameError`] for any malformed, truncated, or corrupt input;
/// never panics, whatever the bytes.
pub fn unpack_frame(frame: &[u8], opts: &UnpackOptions) -> Result<Vec<u32>, FrameError> {
    let mut c = Cursor {
        bytes: frame,
        pos: 0,
    };
    let header = parse_header(&mut c)?;
    let n_groups = header.n_groups();

    let mut meta = Vec::new();
    let mut chunks = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        chunks.push(scan_chunk(&mut c, header.integrity, &mut meta)?);
    }
    if c.u32()? != 0 {
        return Err(FrameError::Inconsistent("missing end-of-frame marker"));
    }
    meta.extend_from_slice(&header.content_size.to_le_bytes());
    let stored = c.u32()?;
    if crc32(&meta) != stored {
        return Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Trailer,
        });
    }
    if c.pos != frame.len() {
        return Err(FrameError::Inconsistent("trailing bytes after frame"));
    }

    let fast = match opts.backend {
        DecodeBackend::Fast => Some(FastDecoder::new(&header.high, &header.low)),
        DecodeBackend::Scalar => None,
    };
    let decoder = GroupDecoder {
        integrity: header.integrity,
        high: &header.high,
        low: &header.low,
        fast: fast.as_ref(),
    };
    let results = run_jobs(n_groups, opts.workers, |g| {
        let (payload, first_len, trailer) = chunks[g];
        decoder.decode(payload, first_len, trailer, g as u32)
    });

    let mut out = Vec::with_capacity(n_groups * GROUP_WORDS);
    for words in results {
        out.extend_from_slice(&words?);
    }
    out.truncate(header.n_insns() as usize);
    Ok(out)
}

/// Streaming `.cpk` writer: an [`io::Write`] adapter over [`pack_frame`].
///
/// CodePack's dictionaries are built over the *whole* text, so the adapter
/// buffers everything written to it and emits the frame in one shot on
/// [`finish`](Self::finish) — the streaming side of the format is the
/// reader. Input bytes are little-endian 32-bit instruction words; a length
/// that is not a multiple of 4 fails at `finish`.
///
/// ```
/// use std::io::Write;
/// use codepack_core::frame::{FrameReader, FrameWriter};
/// let mut w = FrameWriter::new(Vec::new());
/// w.write_all(&0x2402_0001u32.to_le_bytes()).unwrap();
/// let frame = w.finish().unwrap();
/// let mut decoded = Vec::new();
/// std::io::Read::read_to_end(
///     &mut FrameReader::new(&frame[..]).unwrap(),
///     &mut decoded,
/// ).unwrap();
/// assert_eq!(decoded, 0x2402_0001u32.to_le_bytes());
/// ```
pub struct FrameWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    opts: PackOptions,
}

impl<W: Write> FrameWriter<W> {
    /// Creates a writer with default [`PackOptions`].
    pub fn new(inner: W) -> FrameWriter<W> {
        FrameWriter::with_options(inner, PackOptions::default())
    }

    /// Creates a writer with explicit options.
    pub fn with_options(inner: W, opts: PackOptions) -> FrameWriter<W> {
        FrameWriter {
            inner,
            buf: Vec::new(),
            opts,
        }
    }

    /// Packs the buffered input, writes the frame, and returns the inner
    /// writer.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the buffered length is not a multiple of 4; any
    /// error of the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        if !self.buf.len().is_multiple_of(4) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "input is {} bytes — not a whole number of 32-bit instruction words",
                    self.buf.len()
                ),
            ));
        }
        let words: Vec<u32> = self
            .buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let frame = pack_frame(&words, &self.opts);
        self.inner.write_all(&frame)?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for FrameWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streaming `.cpk` reader: an [`io::Read`] adapter yielding the decoded
/// text as little-endian instruction-word bytes.
///
/// The header is read and validated up front (in [`new`](Self::new)); group
/// chunks are then decoded one at a time as the consumer reads, so memory
/// stays bounded by one chunk regardless of content size. The structural
/// trailer is verified when the last chunk has been consumed. Frame errors
/// surface as [`io::ErrorKind::InvalidData`] with the [`FrameError`] as
/// source.
pub struct FrameReader<R: Read> {
    inner: R,
    header: Header,
    fast: Option<FastDecoder>,
    /// Content bytes not yet handed to the consumer.
    remaining: u64,
    groups_read: usize,
    /// Accumulated chunk metadata for the trailer check.
    meta: Vec<u8>,
    /// Decoded bytes waiting for the consumer.
    pending: Vec<u8>,
    pending_pos: usize,
    /// Bytes consumed from `inner` (for `Truncated { at }`).
    pos: u64,
    /// The trailer has been verified; subsequent reads return EOF.
    finished: bool,
}

impl<R: Read> FrameReader<R> {
    /// Reads and validates the frame header with the default (fast) decode
    /// backend.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] the header can produce: truncation, bad magic,
    /// version skew, unknown flags, header checksum mismatch.
    pub fn new(inner: R) -> Result<FrameReader<R>, FrameError> {
        FrameReader::with_backend(inner, DecodeBackend::Fast)
    }

    /// Like [`new`](Self::new) with an explicit decode backend.
    ///
    /// # Errors
    ///
    /// See [`new`](Self::new).
    pub fn with_backend(inner: R, backend: DecodeBackend) -> Result<FrameReader<R>, FrameError> {
        let mut r = FrameReader {
            inner,
            header: Header {
                integrity: StreamIntegrity::None,
                content_size: 0,
                high: Dictionary::from_ranked_values(Vec::new()),
                low: Dictionary::from_ranked_values(Vec::new()),
            },
            fast: None,
            remaining: 0,
            groups_read: 0,
            meta: Vec::new(),
            pending: Vec::new(),
            pending_pos: 0,
            pos: 0,
            finished: false,
        };
        let mut head = Vec::new();
        // magic + version + flags + content_size + dict lengths
        r.fill(&mut head, 4 + 2 + 2 + 8 + 2 + 2)?;
        let high_len = u16::from_le_bytes(head[16..18].try_into().expect("2 bytes"));
        let low_len = u16::from_le_bytes(head[18..20].try_into().expect("2 bytes"));
        // Bound the dictionary read before trusting the lengths; the parser
        // re-checks them against the capacities.
        let dict_bytes = 2
            * (usize::from(high_len.min(HIGH_DICT_CAPACITY))
                + usize::from(low_len.min(LOW_DICT_CAPACITY)));
        r.fill(&mut head, dict_bytes + 4)?;
        let mut c = Cursor {
            bytes: &head,
            pos: 0,
        };
        r.header = parse_header(&mut c)?;
        r.remaining = r.header.content_size;
        r.fast = match backend {
            DecodeBackend::Fast => Some(FastDecoder::new(&r.header.high, &r.header.low)),
            DecodeBackend::Scalar => None,
        };
        Ok(r)
    }

    /// The original text size in bytes, as the header declares.
    pub fn content_size(&self) -> u64 {
        self.header.content_size
    }

    /// Appends exactly `n` more bytes from the inner reader to `buf`.
    fn fill(&mut self, buf: &mut Vec<u8>, n: usize) -> Result<(), FrameError> {
        let start = buf.len();
        buf.resize(start + n, 0);
        let mut filled = start;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(FrameError::Truncated {
                        at: self.pos + (filled - start) as u64,
                    })
                }
                Ok(k) => filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Recover a nested frame error (e.g. reading from another
                // FrameReader) instead of flattening it to a string.
                Err(e) => return Err(FrameError::from_io_error(&e)),
            }
        }
        self.pos += n as u64;
        Ok(())
    }

    /// Reads, verifies, and decodes the next group chunk into `pending`,
    /// or verifies the end-of-frame structure after the last chunk.
    fn advance(&mut self) -> Result<(), FrameError> {
        if self.groups_read == self.header.n_groups() {
            let mut tail = Vec::new();
            self.fill(&mut tail, 8)?;
            if u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) != 0 {
                return Err(FrameError::Inconsistent("missing end-of-frame marker"));
            }
            self.meta
                .extend_from_slice(&self.header.content_size.to_le_bytes());
            let stored = u32::from_le_bytes(tail[4..].try_into().expect("4 bytes"));
            if crc32(&self.meta) != stored {
                return Err(FrameError::ChecksumMismatch {
                    region: FrameRegion::Trailer,
                });
            }
            self.finished = true;
            return Ok(());
        }
        let mut chunk = Vec::new();
        self.fill(&mut chunk, 6)?;
        {
            let mut c = Cursor {
                bytes: &chunk,
                pos: 0,
            };
            let payload_len = c.u32()?;
            if payload_len == 0 {
                return Err(FrameError::Inconsistent("zero-length group chunk"));
            }
            if payload_len > MAX_GROUP_PAYLOAD {
                return Err(FrameError::Inconsistent(
                    "group chunk larger than the format maximum",
                ));
            }
            let first_len = c.u16()?;
            if u32::from(first_len) > payload_len {
                return Err(FrameError::Inconsistent(
                    "first-block length exceeds the group payload",
                ));
            }
            self.meta.extend_from_slice(&chunk);
            let trailer_len = self.header.integrity.overhead_bytes(payload_len) as usize;
            let payload_len = payload_len as usize;
            let mut body = Vec::new();
            self.fill(&mut body, payload_len + trailer_len)?;
            let decoder = GroupDecoder {
                integrity: self.header.integrity,
                high: &self.header.high,
                low: &self.header.low,
                fast: self.fast.as_ref(),
            };
            let words = decoder.decode(
                &body[..payload_len],
                first_len,
                &body[payload_len..],
                self.groups_read as u32,
            )?;
            let take = (self.remaining).min(GROUP_WORDS as u64 * 4) as usize;
            self.pending.clear();
            self.pending_pos = 0;
            for w in &words {
                self.pending.extend_from_slice(&w.to_le_bytes());
            }
            self.pending.truncate(take);
            self.remaining -= take as u64;
        }
        self.groups_read += 1;
        Ok(())
    }
}

impl<R: Read> Read for FrameReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        while self.pending_pos == self.pending.len() {
            if self.finished {
                return Ok(0);
            }
            self.advance().map_err(io::Error::from)?;
        }
        let n = buf.len().min(self.pending.len() - self.pending_pos);
        buf[..n].copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + n]);
        self.pending_pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodePackImage;

    fn text(n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| match i % 9 {
                8 => (i as u32).wrapping_mul(0x9e37_79b9),
                k => 0x2442_0000 | k as u32,
            })
            .collect()
    }

    #[test]
    fn round_trip_all_integrity_modes() {
        let words = text(100);
        for integrity in [
            StreamIntegrity::None,
            StreamIntegrity::Parity,
            StreamIntegrity::Crc32,
        ] {
            let frame = pack_frame(
                &words,
                &PackOptions {
                    integrity,
                    ..PackOptions::default()
                },
            );
            for backend in [DecodeBackend::Scalar, DecodeBackend::Fast] {
                let got = unpack_frame(
                    &frame,
                    &UnpackOptions {
                        backend,
                        workers: 1,
                    },
                )
                .unwrap();
                assert_eq!(got, words, "{integrity:?}/{backend:?}");
            }
        }
    }

    #[test]
    fn parallel_pack_and_unpack_byte_identical() {
        let words = text(500);
        let serial = pack_frame(&words, &PackOptions::default());
        for workers in [2, 3, 4, 7] {
            let parallel = pack_frame(
                &words,
                &PackOptions {
                    workers,
                    ..PackOptions::default()
                },
            );
            assert_eq!(serial, parallel, "pack at {workers} workers");
            let got = unpack_frame(
                &serial,
                &UnpackOptions {
                    workers,
                    ..UnpackOptions::default()
                },
            )
            .unwrap();
            assert_eq!(got, words, "unpack at {workers} workers");
        }
    }

    #[test]
    fn payloads_match_image_compressed_stream() {
        // The frame is the wire form of CodePackImage::compress: same
        // dictionaries, same per-block bytes.
        let words = text(333);
        let frame = pack_frame(&words, &PackOptions::default());
        let image = CodePackImage::compress(&words, &CompressionConfig::default());
        let mut c = Cursor {
            bytes: &frame,
            pos: 0,
        };
        let header = parse_header(&mut c).unwrap();
        let mut stream = Vec::new();
        let mut meta = Vec::new();
        for _ in 0..header.n_groups() {
            let (payload, _, _) = scan_chunk(&mut c, header.integrity, &mut meta).unwrap();
            stream.extend_from_slice(payload);
        }
        assert_eq!(stream, image.compressed_bytes());
    }

    #[test]
    fn empty_text_is_a_valid_frame() {
        let frame = pack_frame(&[], &PackOptions::default());
        assert_eq!(
            unpack_frame(&frame, &UnpackOptions::default()).unwrap(),
            Vec::<u32>::new()
        );
        let mut r = FrameReader::new(&frame[..]).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn non_group_multiple_lengths_round_trip() {
        for n in [1, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
            let words = text(n);
            let frame = pack_frame(&words, &PackOptions::default());
            assert_eq!(
                unpack_frame(&frame, &UnpackOptions::default()).unwrap(),
                words,
                "length {n}"
            );
        }
    }

    #[test]
    fn truncation_yields_truncated_everywhere() {
        let frame = pack_frame(&text(64), &PackOptions::default());
        for cut in 0..frame.len() {
            match unpack_frame(&frame[..cut], &UnpackOptions::default()) {
                Err(FrameError::Truncated { at }) => {
                    assert!(at <= cut as u64, "cut {cut}: position {at} in bounds")
                }
                Err(FrameError::BadMagic) => assert!(cut < 4),
                other => panic!("cut at {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_version_flags_rejected() {
        let frame = pack_frame(&text(32), &PackOptions::default());
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert_eq!(
            unpack_frame(&bad, &UnpackOptions::default()),
            Err(FrameError::BadMagic)
        );
        let mut skew = frame.clone();
        skew[4] = 9;
        assert_eq!(
            unpack_frame(&skew, &UnpackOptions::default()),
            Err(FrameError::VersionSkew { version: 9 })
        );
        let mut flags = frame.clone();
        flags[7] = 0x80; // reserved high bits of the flags field
        assert_eq!(
            unpack_frame(&flags, &UnpackOptions::default()),
            Err(FrameError::UnknownFlags {
                flags: u16::from_le_bytes([flags[6], flags[7]])
            })
        );
    }

    #[test]
    fn header_corruption_is_a_header_checksum_mismatch() {
        let mut frame = pack_frame(&text(32), &PackOptions::default());
        frame[20] ^= 0x01; // inside the dictionaries
        assert_eq!(
            unpack_frame(&frame, &UnpackOptions::default()),
            Err(FrameError::ChecksumMismatch {
                region: FrameRegion::Header
            })
        );
    }

    #[test]
    fn flipped_group_trailer_names_the_group() {
        let words = text(96); // 3 groups
        let frame = pack_frame(&words, &PackOptions::default());
        // Flip the last byte of the final chunk's CRC trailer (just before
        // the 8-byte end marker + trailer CRC).
        let mut bad = frame.clone();
        let at = bad.len() - 9;
        bad[at] ^= 0xff;
        assert_eq!(
            unpack_frame(&bad, &UnpackOptions::default()),
            Err(FrameError::ChecksumMismatch {
                region: FrameRegion::Group(2)
            })
        );
    }

    #[test]
    fn flipped_frame_trailer_is_a_trailer_mismatch() {
        let mut frame = pack_frame(&text(96), &PackOptions::default());
        let at = frame.len() - 1;
        frame[at] ^= 0xff;
        assert_eq!(
            unpack_frame(&frame, &UnpackOptions::default()),
            Err(FrameError::ChecksumMismatch {
                region: FrameRegion::Trailer
            })
        );
    }

    #[test]
    fn payload_corruption_without_integrity_is_typed() {
        // With integrity off, a mangled payload either decodes to different
        // words or errors — never panics.
        let words = text(64);
        let opts = PackOptions {
            integrity: StreamIntegrity::None,
            ..PackOptions::default()
        };
        let frame = pack_frame(&words, &opts);
        for at in 0..frame.len() {
            let mut bad = frame.clone();
            bad[at] ^= 0x55;
            // Typed result either way; a panic here fails the test.
            let _ = unpack_frame(&bad, &UnpackOptions::default());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = pack_frame(&text(32), &PackOptions::default());
        frame.push(0);
        assert_eq!(
            unpack_frame(&frame, &UnpackOptions::default()),
            Err(FrameError::Inconsistent("trailing bytes after frame"))
        );
    }

    #[test]
    fn writer_reader_round_trip_streams() {
        let words = text(200);
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let mut w = FrameWriter::new(Vec::new());
        // Write in awkward splits to exercise buffering.
        for piece in bytes.chunks(13) {
            w.write_all(piece).unwrap();
        }
        let frame = w.finish().unwrap();
        assert_eq!(frame, pack_frame(&words, &PackOptions::default()));

        for backend in [DecodeBackend::Scalar, DecodeBackend::Fast] {
            let mut r = FrameReader::with_backend(&frame[..], backend).unwrap();
            assert_eq!(r.content_size(), bytes.len() as u64);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out, bytes, "{backend:?}");
        }
    }

    #[test]
    fn writer_rejects_partial_words() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_all(&[1, 2, 3]).unwrap();
        let err = w.finish().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reader_surfaces_frame_errors_as_invalid_data() {
        let mut frame = pack_frame(&text(64), &PackOptions::default());
        let at = frame.len() - 9;
        frame[at] ^= 0xff;
        let mut r = FrameReader::new(&frame[..]).unwrap();
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let source = err.get_ref().expect("frame error attached");
        assert!(source.downcast_ref::<FrameError>().is_some());
    }

    #[test]
    fn reader_rejects_truncated_input() {
        let frame = pack_frame(&text(64), &PackOptions::default());
        let cut = frame.len() - 20;
        let mut r = FrameReader::new(&frame[..cut]).unwrap();
        let mut out = Vec::new();
        assert!(r.read_to_end(&mut out).is_err());
    }

    #[test]
    fn every_frame_error_variant_round_trips_through_io_error() {
        // The service layer and the streaming reader both push FrameErrors
        // through io::Error; none of the variants may lose identity.
        let variants = vec![
            FrameError::Truncated { at: 123 },
            FrameError::BadMagic,
            FrameError::VersionSkew { version: 9 },
            FrameError::UnknownFlags { flags: 0x8002 },
            FrameError::ChecksumMismatch {
                region: FrameRegion::Header,
            },
            FrameError::ChecksumMismatch {
                region: FrameRegion::Group(17),
            },
            FrameError::ChecksumMismatch {
                region: FrameRegion::Trailer,
            },
            FrameError::Corrupt {
                group: 3,
                source: DecompressError::Truncated { at_bit: 7 },
            },
            FrameError::Inconsistent("zero-length group chunk"),
            FrameError::Io("disk on fire".to_string()),
        ];
        for v in variants {
            let io_err = io::Error::from(v.clone());
            assert_eq!(FrameError::from_io_error(&io_err), v, "{v:?}");
        }
        // Truncation is an EOF condition; data damage is InvalidData.
        assert_eq!(
            io::Error::from(FrameError::Truncated { at: 0 }).kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            io::Error::from(FrameError::BadMagic).kind(),
            io::ErrorKind::InvalidData
        );
        // A foreign io::Error degrades to FrameError::Io with the message.
        let foreign = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        assert_eq!(
            FrameError::from_io_error(&foreign),
            FrameError::Io("nope".to_string())
        );
    }

    #[test]
    fn reader_truncation_survives_the_io_layer() {
        let frame = pack_frame(&text(64), &PackOptions::default());
        let mut r = FrameReader::new(&frame[..frame.len() - 20]).unwrap();
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        match FrameError::from_io_error(&err) {
            FrameError::Truncated { .. } => {}
            other => panic!("expected Truncated through io::Error, got {other:?}"),
        }
    }

    #[test]
    fn nested_reader_errors_keep_their_variant() {
        // A FrameReader reading from a source that fails with a wrapped
        // FrameError must surface that error, not a stringified Io copy.
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::from(FrameError::ChecksumMismatch {
                    region: FrameRegion::Group(5),
                }))
            }
        }
        let mut r = FrameReader {
            inner: Failing,
            header: Header {
                integrity: StreamIntegrity::None,
                content_size: 256,
                high: Dictionary::from_ranked_values(Vec::new()),
                low: Dictionary::from_ranked_values(Vec::new()),
            },
            fast: None,
            remaining: 256,
            groups_read: 0,
            meta: Vec::new(),
            pending: Vec::new(),
            pending_pos: 0,
            pos: 0,
            finished: false,
        };
        let err = r.advance().unwrap_err();
        assert_eq!(
            err,
            FrameError::ChecksumMismatch {
                region: FrameRegion::Group(5)
            }
        );
    }

    #[test]
    fn scan_frame_reports_the_skeleton() {
        let words = text(100); // 4 groups (100 words pad to 128)
        for integrity in [
            StreamIntegrity::None,
            StreamIntegrity::Parity,
            StreamIntegrity::Crc32,
        ] {
            let frame = pack_frame(
                &words,
                &PackOptions {
                    integrity,
                    ..PackOptions::default()
                },
            );
            let summary = scan_frame(&frame).unwrap();
            assert_eq!(summary.content_size, 400);
            assert_eq!(summary.integrity, integrity);
            assert_eq!(summary.group_payload_lens.len(), 4);
            assert!(summary.group_payload_lens.iter().all(|&l| l > 0));
        }
        // The scan checks structure only: a flipped payload byte passes the
        // scan (the trailer CRC covers metadata, not payloads) but a
        // flipped trailer byte fails it.
        let frame = pack_frame(&words, &PackOptions::default());
        let mut bad = frame.clone();
        let at = bad.len() - 1;
        bad[at] ^= 0xff;
        assert_eq!(
            scan_frame(&bad),
            Err(FrameError::ChecksumMismatch {
                region: FrameRegion::Trailer
            })
        );
        for cut in 0..frame.len() {
            assert!(scan_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn error_display_and_source() {
        let e = FrameError::Corrupt {
            group: 3,
            source: DecompressError::Truncated { at_bit: 7 },
        };
        assert_eq!(
            e.to_string(),
            "group 3 does not decode: compressed stream truncated at bit 7"
        );
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(
            FrameError::ChecksumMismatch {
                region: FrameRegion::Group(1)
            }
            .to_string(),
            "checksum mismatch in group 1"
        );
    }
}
