//! Composition statistics of a compressed image (paper Tables 3 and 4).

use std::fmt;

/// Byte/bit accounting of every component of a compressed program region,
/// matching the columns of the paper's Table 4, plus the compression ratio
/// of Table 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompositionStats {
    /// Original (native) text size in bytes.
    pub original_bytes: u64,
    /// Index table size in bytes (one 32-bit entry per compression group).
    pub index_table_bytes: u64,
    /// High + low dictionary contents in bytes.
    pub dictionary_bytes: u64,
    /// Tag bits of dictionary-hit codewords (including per-block mode flags).
    pub compressed_tag_bits: u64,
    /// Index bits of dictionary-hit codewords.
    pub dict_index_bits: u64,
    /// Tag bits marking raw (escaped) half-words and raw blocks.
    pub raw_tag_bits: u64,
    /// Literal bits copied from the original program (escaped half-words and
    /// whole non-compressed blocks).
    pub raw_literal_bits: u64,
    /// Zero bits appended to byte-align each compression block.
    pub pad_bits: u64,
    /// Number of half-words that had to be raw-escaped.
    pub raw_halfwords: u64,
    /// Number of whole blocks stored non-compressed.
    pub raw_blocks: u64,
    /// Total number of compression blocks.
    pub blocks: u64,
}

impl CompositionStats {
    /// Bits of the compressed instruction region (everything except index
    /// table and dictionaries).
    pub fn stream_bits(&self) -> u64 {
        self.compressed_tag_bits
            + self.dict_index_bits
            + self.raw_tag_bits
            + self.raw_literal_bits
            + self.pad_bits
    }

    /// Total compressed size in bytes: index table + dictionaries + stream.
    /// The stream is byte-aligned per block, so `stream_bits` is already a
    /// multiple of 8.
    pub fn total_bytes(&self) -> u64 {
        debug_assert_eq!(self.stream_bits() % 8, 0, "blocks are byte-aligned");
        self.index_table_bytes + self.dictionary_bytes + self.stream_bits() / 8
    }

    /// The paper's compression ratio: `compressed size / original size`
    /// (smaller is better; CodePack reports ~60% for PowerPC).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            return 1.0;
        }
        self.total_bytes() as f64 / self.original_bytes as f64
    }

    /// Fraction of the compressed region occupied by `bits`, as Table 4
    /// reports each component.
    pub fn fraction_of_total(&self, bits: u64) -> f64 {
        let total_bits = self.total_bytes() * 8;
        if total_bits == 0 {
            return 0.0;
        }
        bits as f64 / total_bits as f64
    }

    /// Checks the internal accounting identities every compressed image
    /// must satisfy, returning the first violated invariant.
    ///
    /// The identities pin the codec's bookkeeping to the layout constants:
    /// blocks are byte-aligned, every raw-escaped half-word costs exactly
    /// `RAW_TAG_BITS + 16` bits, every raw block costs a 1-bit flag plus
    /// 512 literal bits, padding never reaches a full byte per block, and
    /// the Table 4 fractions partition the compressed image.
    pub fn verify(&self) -> Result<(), String> {
        use crate::layout::{BLOCK_INSNS, RAW_TAG_BITS};

        if !self.stream_bits().is_multiple_of(8) {
            return Err(format!(
                "stream is not byte-aligned: {} bits",
                self.stream_bits()
            ));
        }
        if self.raw_blocks > self.blocks {
            return Err(format!(
                "{} raw blocks out of {} total",
                self.raw_blocks, self.blocks
            ));
        }
        if self.pad_bits >= 8 * self.blocks.max(1) {
            return Err(format!(
                "{} pad bits for {} blocks (padding must stay under a byte per block)",
                self.pad_bits, self.blocks
            ));
        }
        let want_literals = 16 * self.raw_halfwords + u64::from(BLOCK_INSNS) * 32 * self.raw_blocks;
        if self.raw_literal_bits != want_literals {
            return Err(format!(
                "raw literal bits {} != 16*{} halfwords + 512*{} blocks",
                self.raw_literal_bits, self.raw_halfwords, self.raw_blocks
            ));
        }
        let want_raw_tags = u64::from(RAW_TAG_BITS) * self.raw_halfwords + self.raw_blocks;
        if self.raw_tag_bits != want_raw_tags {
            return Err(format!(
                "raw tag bits {} != {}*{} halfwords + {} raw-block flags",
                self.raw_tag_bits, RAW_TAG_BITS, self.raw_halfwords, self.raw_blocks
            ));
        }
        if self.compressed_tag_bits < self.blocks - self.raw_blocks {
            return Err(format!(
                "compressed tag bits {} cannot cover {} compressed-block mode flags",
                self.compressed_tag_bits,
                self.blocks - self.raw_blocks
            ));
        }
        if self.total_bytes() > 0 {
            let sum: f64 = self.table4_fractions().iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(format!("Table 4 fractions sum to {sum}, expected 1"));
            }
        }
        Ok(())
    }

    /// The Table 4 row for this image:
    /// `(index, dictionary, compressed tags, dict indices, raw tags, raw bits, pad)`
    /// as fractions of the total compressed size.
    pub fn table4_fractions(&self) -> [f64; 7] {
        [
            self.fraction_of_total(self.index_table_bytes * 8),
            self.fraction_of_total(self.dictionary_bytes * 8),
            self.fraction_of_total(self.compressed_tag_bits),
            self.fraction_of_total(self.dict_index_bits),
            self.fraction_of_total(self.raw_tag_bits),
            self.fraction_of_total(self.raw_literal_bits),
            self.fraction_of_total(self.pad_bits),
        ]
    }
}

impl fmt::Display for CompositionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [idx, dict, ctag, didx, rtag, rbits, pad] = self.table4_fractions();
        write!(
            f,
            "ratio {:.1}% (index {:.1}%, dict {:.1}%, tags {:.1}%, indices {:.1}%, \
             raw tags {:.1}%, raw bits {:.1}%, pad {:.1}%, total {} bytes)",
            self.compression_ratio() * 100.0,
            idx * 100.0,
            dict * 100.0,
            ctag * 100.0,
            didx * 100.0,
            rtag * 100.0,
            rbits * 100.0,
            pad * 100.0,
            self.total_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompositionStats {
        CompositionStats {
            original_bytes: 1000,
            index_table_bytes: 40,
            dictionary_bytes: 100,
            compressed_tag_bits: 800,
            dict_index_bits: 1600,
            raw_tag_bits: 120,
            raw_literal_bits: 640,
            pad_bits: 40,
            raw_halfwords: 40,
            raw_blocks: 0,
            blocks: 16,
        }
    }

    #[test]
    fn totals_add_up() {
        let s = sample();
        assert_eq!(s.stream_bits(), 3200);
        assert_eq!(s.total_bytes(), 40 + 100 + 400);
    }

    #[test]
    fn ratio_is_fraction_of_original() {
        let s = sample();
        assert!((s.compression_ratio() - 0.54).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = sample();
        let sum: f64 = s.table4_fractions().iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "components partition the image, got {sum}"
        );
    }

    #[test]
    fn verify_accepts_consistent_and_rejects_broken_accounting() {
        let s = sample();
        s.verify().expect("sample is internally consistent");

        let mut misaligned = s;
        misaligned.pad_bits += 1;
        assert!(misaligned.verify().unwrap_err().contains("byte-aligned"));

        let mut bad_raw = s;
        bad_raw.raw_halfwords += 1;
        assert!(bad_raw.verify().unwrap_err().contains("raw literal bits"));

        let mut bad_blocks = s;
        bad_blocks.raw_blocks = bad_blocks.blocks + 1;
        assert!(bad_blocks.verify().unwrap_err().contains("raw blocks"));

        CompositionStats::default()
            .verify()
            .expect("the empty image is consistent");
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = CompositionStats::default();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.compression_ratio(), 1.0);
        assert_eq!(s.fraction_of_total(10), 0.0);
    }
}
