//! Whole-program compression: blocks, groups, and the index table.

use std::sync::OnceLock;

use crate::bits::{BitReader, BitWriter};
use crate::dict::Dictionary;
use crate::fastdecode::{DecodeBackend, DecodeCounters, FastDecoder};
use crate::layout::{
    class_for_rank, CodewordClass, BLOCKS_PER_GROUP, BLOCK_INSNS, GROUP_INSNS, HIGH_CLASSES,
    HIGH_DICT_CAPACITY, INDEX_ENTRY_BYTES, LOW_CLASSES, LOW_DICT_CAPACITY, RAW_TAG, RAW_TAG_BITS,
};
use crate::stats::CompositionStats;
use crate::DecompressError;

/// Tuning knobs of the compressor.
///
/// The defaults reproduce the paper's CodePack; the other settings exist for
/// the ablation benchmarks.
///
/// ```
/// use codepack_core::CompressionConfig;
/// let c = CompressionConfig::default();
/// assert!(c.raw_block_fallback && c.pin_low_zero);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressionConfig {
    /// Store a block non-compressed when compression would expand it
    /// (paper §5.1: "CodePack may choose to not compress entire blocks").
    pub raw_block_fallback: bool,
    /// Give the low half-word value 0 the dedicated 2-bit codeword
    /// (paper §3.1). Disabling ranks 0 by frequency like any other value.
    pub pin_low_zero: bool,
    /// Minimum occurrence count for a half-word to earn a dictionary slot.
    /// A slot costs 16 bits of dictionary space, so singletons are cheaper
    /// as raw escapes.
    pub dict_min_count: u32,
}

impl Default for CompressionConfig {
    fn default() -> CompressionConfig {
        CompressionConfig {
            raw_block_fallback: true,
            pin_low_zero: true,
            dict_min_count: 2,
        }
    }
}

/// Placement and decode-timing metadata of one compression block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    /// Byte offset of the block within the compressed region.
    pub byte_offset: u32,
    /// Byte length of the block (including alignment padding).
    pub byte_len: u16,
    /// `cum_bits[j]` = bits that must arrive before instruction `j` of the
    /// block can finish decoding; `cum_bits[16]` is the unpadded bit length.
    /// The decompressor timing model uses this to overlap burst reads with
    /// decoding.
    pub cum_bits: [u16; BLOCK_INSNS as usize + 1],
    /// Bit `j` set ⇔ instruction `j` needed at least one raw-escaped
    /// half-word; `0xFFFF` for a whole raw (non-compressed) block. Trace
    /// instrumentation uses this to classify per-instruction decode events
    /// without re-walking the bitstream.
    pub raw_mask: u16,
}

/// A CodePack-compressed program image: two dictionaries, a byte-aligned
/// stream of compression blocks, and the index table mapping native
/// instruction addresses into the compressed space.
///
/// ```
/// use codepack_core::{CodePackImage, CompressionConfig};
/// let text: Vec<u32> = (0..64).map(|i| 0x2400_0000 | (i % 7)).collect();
/// let image = CodePackImage::compress(&text, &CompressionConfig::default());
/// assert_eq!(image.decompress_all().unwrap(), text);
/// assert!(image.stats().compression_ratio() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct CodePackImage {
    high_dict: Dictionary,
    low_dict: Dictionary,
    index: Vec<u32>,
    bytes: Vec<u8>,
    blocks: Vec<BlockInfo>,
    n_insns: u32,
    stats: CompositionStats,
    /// Lazily-built decode tables for the fast backend. Depends only on the
    /// dictionaries, so it survives `with_corrupted_bytes`.
    fast: OnceLock<FastDecoder>,
    /// Lazily-built per-block decode-path counters (the block profiler's
    /// attribution source). Depends on the stream bytes, so
    /// `with_corrupted_bytes` resets it.
    decode_counts: OnceLock<Vec<DecodeCounters>>,
}

use crate::layout::INDEX_SECOND_OFFSET_BITS as SECOND_OFFSET_BITS;
const SECOND_OFFSET_MASK: u32 = (1 << SECOND_OFFSET_BITS) - 1;

impl CodePackImage {
    /// Compresses a text section.
    ///
    /// The text is padded with zero words to a whole compression group
    /// (32 instructions); the pad never affects [`Self::decompress_all`],
    /// which returns exactly the original words.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty or longer than 2²⁵ bytes of compressed
    /// output (the index-entry address width — far beyond any embedded
    /// program).
    pub fn compress(text: &[u32], config: &CompressionConfig) -> CodePackImage {
        assert!(!text.is_empty(), "cannot compress an empty text section");
        let n_insns = text.len() as u32;
        let padded_len = (text.len()).div_ceil(GROUP_INSNS as usize) * GROUP_INSNS as usize;
        let mut padded = text.to_vec();
        padded.resize(padded_len, 0);

        let high_dict = Dictionary::build(
            padded.iter().map(|&w| (w >> 16) as u16),
            HIGH_DICT_CAPACITY,
            config.dict_min_count,
            false,
        );
        let low_dict = Dictionary::build(
            padded.iter().map(|&w| w as u16),
            LOW_DICT_CAPACITY,
            config.dict_min_count,
            config.pin_low_zero,
        );

        let mut stats = CompositionStats {
            original_bytes: u64::from(n_insns) * 4,
            dictionary_bytes: u64::from(high_dict.size_bytes() + low_dict.size_bytes()),
            ..CompositionStats::default()
        };

        let mut bytes = Vec::new();
        let mut blocks = Vec::with_capacity(padded_len / BLOCK_INSNS as usize);
        for chunk in padded.chunks_exact(BLOCK_INSNS as usize) {
            let byte_offset = bytes.len() as u32;
            let (block_bytes, cum_bits, raw_mask, delta) =
                encode_block(chunk, &high_dict, &low_dict, config);
            stats.compressed_tag_bits += delta.compressed_tag_bits;
            stats.dict_index_bits += delta.dict_index_bits;
            stats.raw_tag_bits += delta.raw_tag_bits;
            stats.raw_literal_bits += delta.raw_literal_bits;
            stats.pad_bits += delta.pad_bits;
            stats.raw_halfwords += delta.raw_halfwords;
            stats.raw_blocks += delta.raw_blocks;
            stats.blocks += 1;
            let byte_len = u16::try_from(block_bytes.len()).expect("block fits in u16 bytes");
            assert!(
                u32::from(byte_len) <= SECOND_OFFSET_MASK,
                "block of {byte_len} bytes exceeds the index second-offset field"
            );
            bytes.extend_from_slice(&block_bytes);
            blocks.push(BlockInfo {
                byte_offset,
                byte_len,
                cum_bits,
                raw_mask,
            });
        }

        // Build the index table: one 32-bit entry per group of two blocks.
        let mut index = Vec::with_capacity(blocks.len() / BLOCKS_PER_GROUP as usize);
        for pair in blocks.chunks_exact(BLOCKS_PER_GROUP as usize) {
            let first = pair[0].byte_offset;
            assert!(
                first < (1 << (32 - SECOND_OFFSET_BITS)),
                "compressed region exceeds index address width"
            );
            let second_rel = u32::from(pair[0].byte_len);
            index.push((first << SECOND_OFFSET_BITS) | second_rel);
        }
        stats.index_table_bytes = index.len() as u64 * u64::from(INDEX_ENTRY_BYTES);

        CodePackImage {
            high_dict,
            low_dict,
            index,
            bytes,
            blocks,
            n_insns,
            stats,
            fast: OnceLock::new(),
            decode_counts: OnceLock::new(),
        }
    }

    /// Number of instructions in the original (unpadded) text.
    pub fn len_insns(&self) -> u32 {
        self.n_insns
    }

    /// Number of compression blocks (16 instructions each, after padding).
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Number of compression groups / index-table entries.
    pub fn num_groups(&self) -> u32 {
        self.index.len() as u32
    }

    /// The compressed instruction stream.
    pub fn compressed_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The index table entries.
    pub fn index_table(&self) -> &[u32] {
        &self.index
    }

    /// Composition statistics (Tables 3 and 4).
    pub fn stats(&self) -> &CompositionStats {
        &self.stats
    }

    /// The high half-word dictionary.
    pub fn high_dict(&self) -> &Dictionary {
        &self.high_dict
    }

    /// The low half-word dictionary.
    pub fn low_dict(&self) -> &Dictionary {
        &self.low_dict
    }

    /// Placement metadata of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= num_blocks()`.
    pub fn block_info(&self, block: u32) -> &BlockInfo {
        &self.blocks[block as usize]
    }

    /// The compression block containing instruction index `insn`.
    pub fn block_of_insn(&self, insn: u32) -> u32 {
        insn / BLOCK_INSNS
    }

    /// The compression group containing instruction index `insn`.
    pub fn group_of_insn(&self, insn: u32) -> u32 {
        insn / GROUP_INSNS
    }

    /// Resolves a block's byte offset *through the index table*, exactly as
    /// the hardware does: the entry gives the first block's address and the
    /// second block's short relative offset (paper §3.1).
    pub fn block_offset_via_index(&self, block: u32) -> Result<u32, DecompressError> {
        let group = (block / BLOCKS_PER_GROUP) as usize;
        let entry = *self.index.get(group).ok_or(DecompressError::BadBlock {
            block,
            blocks: self.num_blocks(),
        })?;
        let first = entry >> SECOND_OFFSET_BITS;
        Ok(if block.is_multiple_of(BLOCKS_PER_GROUP) {
            first
        } else {
            first + (entry & SECOND_OFFSET_MASK)
        })
    }

    /// Decompresses one 16-instruction block, resolving its location through
    /// the index table.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] if `block` is out of range or the
    /// stream is corrupt.
    pub fn decompress_block(
        &self,
        block: u32,
    ) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
        let offset = self.block_offset_via_index(block)? as usize;
        let mut reader = BitReader::new(&self.bytes[offset..]);
        decode_block(&mut reader, &self.high_dict, &self.low_dict)
    }

    /// Decompresses the whole image back to the original text.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on corrupt input; on a well-formed
    /// image this returns exactly the words passed to [`Self::compress`].
    pub fn decompress_all(&self) -> Result<Vec<u32>, DecompressError> {
        let mut out = Vec::with_capacity(self.blocks.len() * BLOCK_INSNS as usize);
        for b in 0..self.num_blocks() {
            out.extend_from_slice(&self.decompress_block(b)?);
        }
        out.truncate(self.n_insns as usize);
        Ok(out)
    }

    /// The image's table-driven decoder, built on first use and cached.
    ///
    /// The tables depend only on the dictionaries, so one build amortises
    /// over every block of the image (and every corrupted variant of it).
    pub fn fast_decoder(&self) -> &FastDecoder {
        self.fast
            .get_or_init(|| FastDecoder::new(&self.high_dict, &self.low_dict))
    }

    /// Per-block decode-path counters of the table-driven backend, built
    /// on first use and cached: entry `b` is what one counted decode of
    /// block `b` reports ([`FastDecoder::decode_block_counted`] on the
    /// block's exact byte slice). The counters are a pure function of the
    /// image bytes, so one pass amortises over every profiled run sharing
    /// this image — the block profiler multiplies them by per-run
    /// invocation counts instead of re-walking streams. A block whose
    /// index entry is unreadable contributes zeroed counters.
    pub fn block_decode_counters(&self) -> &[DecodeCounters] {
        self.decode_counts.get_or_init(|| {
            let fast = self.fast_decoder();
            (0..self.num_blocks())
                .map(|b| match self.block_offset_via_index(b) {
                    Ok(offset) => {
                        let offset = offset as usize;
                        let len = usize::from(self.blocks[b as usize].byte_len);
                        fast.decode_block_counted(&self.bytes[offset..offset + len])
                            .1
                    }
                    Err(_) => DecodeCounters::default(),
                })
                .collect()
        })
    }

    /// Decompresses one block with the table-driven fast backend.
    ///
    /// Byte-identical to [`Self::decompress_block`] on every input — equal
    /// words on success, equal [`DecompressError`] values on corrupt or
    /// truncated streams.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] if `block` is out of range or the
    /// stream is corrupt.
    pub fn decode_block_fast(
        &self,
        block: u32,
    ) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
        let offset = self.block_offset_via_index(block)? as usize;
        self.fast_decoder().decode_block(&self.bytes[offset..])
    }

    /// Decompresses the whole image with the table-driven fast backend.
    ///
    /// Byte-identical to [`Self::decompress_all`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on corrupt input.
    pub fn decompress_all_fast(&self) -> Result<Vec<u32>, DecompressError> {
        let fast = self.fast_decoder();
        let mut out = Vec::with_capacity(self.blocks.len() * BLOCK_INSNS as usize);
        for b in 0..self.num_blocks() {
            let offset = self.block_offset_via_index(b)? as usize;
            out.extend_from_slice(&fast.decode_block(&self.bytes[offset..])?);
        }
        out.truncate(self.n_insns as usize);
        Ok(out)
    }

    /// Decompresses one block with the selected backend.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] if `block` is out of range or the
    /// stream is corrupt.
    pub fn decompress_block_with(
        &self,
        block: u32,
        backend: DecodeBackend,
    ) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
        match backend {
            DecodeBackend::Scalar => self.decompress_block(block),
            DecodeBackend::Fast => self.decode_block_fast(block),
        }
    }

    /// Decompresses the whole image with the selected backend.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on corrupt input.
    pub fn decompress_all_with(&self, backend: DecodeBackend) -> Result<Vec<u32>, DecompressError> {
        match backend {
            DecodeBackend::Scalar => self.decompress_all(),
            DecodeBackend::Fast => self.decompress_all_fast(),
        }
    }

    /// Assembles an image from pre-validated parts (the ROM loader).
    pub(crate) fn from_parts(
        high_dict: Dictionary,
        low_dict: Dictionary,
        index: Vec<u32>,
        bytes: Vec<u8>,
        blocks: Vec<BlockInfo>,
        n_insns: u32,
        stats: CompositionStats,
    ) -> CodePackImage {
        CodePackImage {
            high_dict,
            low_dict,
            index,
            bytes,
            blocks,
            n_insns,
            stats,
            fast: OnceLock::new(),
            decode_counts: OnceLock::new(),
        }
    }

    /// Test-only: constructs an image with corrupted stream bytes, keeping
    /// dictionaries and index intact. Used by failure-injection tests.
    ///
    /// # Errors
    ///
    /// Returns [`CorruptionOutOfRange`] when `at` lies past the compressed
    /// stream — an out-of-range position used to be ignored, which let a
    /// fault-injection test silently exercise the clean image.
    #[doc(hidden)]
    pub fn with_corrupted_bytes(
        mut self,
        at: usize,
        value: u8,
    ) -> Result<CodePackImage, CorruptionOutOfRange> {
        if at >= self.bytes.len() {
            return Err(CorruptionOutOfRange {
                at,
                len: self.bytes.len(),
            });
        }
        self.bytes[at] = value;
        // The cached per-block counters were computed from the clean
        // stream; the corrupted one decodes differently.
        self.decode_counts = OnceLock::new();
        Ok(self)
    }
}

/// A corruption request aimed past the end of the compressed stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptionOutOfRange {
    /// Requested byte position.
    pub at: usize,
    /// Length of the compressed stream.
    pub len: usize,
}

impl std::fmt::Display for CorruptionOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corruption offset {} is outside the {}-byte compressed stream",
            self.at, self.len
        )
    }
}

impl std::error::Error for CorruptionOutOfRange {}

/// Decodes one compression block from raw stream bytes with the given
/// dictionaries — the low-level entry point a hardware decompressor
/// implements. [`CodePackImage::decompress_block`] wraps this with
/// index-table resolution.
///
/// Decoding stops after 16 instructions: the 0–7 zero bits that pad the
/// block to a byte boundary (the paper's Table 4 *Pad* column) are ignored,
/// as are any further bytes — `bytes` may be exactly one padded block or a
/// whole multi-block stream. A block is therefore decodable from its own
/// `byte_len` bytes alone, but **not** from its unpadded bit length rounded
/// down: truncating the pad byte cuts real codeword bits and yields
/// [`DecompressError::Truncated`].
///
/// # Errors
///
/// Returns a [`DecompressError`] if the stream is truncated or a codeword
/// indexes past a dictionary. Never panics, whatever the input bytes.
///
/// ```
/// use codepack_core::{decode_block_bytes, CodePackImage, CompressionConfig, Dictionary};
/// let text = vec![0x2402_0001u32; 16];
/// let image = CodePackImage::compress(&text, &CompressionConfig::default());
/// let words = decode_block_bytes(
///     image.compressed_bytes(),
///     image.high_dict(),
///     image.low_dict(),
/// ).unwrap();
/// assert_eq!(&words[..], &text[..]);
///
/// // Trailing padding: the first block alone — its `byte_len` includes the
/// // pad bits after the last codeword — decodes to the same 16 words.
/// let len = usize::from(image.block_info(0).byte_len);
/// let alone = decode_block_bytes(
///     &image.compressed_bytes()[..len],
///     image.high_dict(),
///     image.low_dict(),
/// ).unwrap();
/// assert_eq!(alone, words);
/// ```
pub fn decode_block_bytes(
    bytes: &[u8],
    high_dict: &Dictionary,
    low_dict: &Dictionary,
) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
    let mut reader = BitReader::new(bytes);
    decode_block(&mut reader, high_dict, low_dict)
}

#[derive(Default)]
pub(crate) struct BlockDelta {
    compressed_tag_bits: u64,
    dict_index_bits: u64,
    raw_tag_bits: u64,
    raw_literal_bits: u64,
    pad_bits: u64,
    raw_halfwords: u64,
    raw_blocks: u64,
}

fn encode_halfword(
    w: &mut BitWriter,
    value: u16,
    dict: &Dictionary,
    classes: &[CodewordClass; 5],
    delta: &mut BlockDelta,
) {
    match dict
        .rank_of(value)
        .and_then(|r| class_for_rank(classes, r).map(|c| (r, c)))
    {
        Some((rank, class)) => {
            w.write(u32::from(class.tag), u32::from(class.tag_bits));
            w.write(u32::from(rank - class.base), u32::from(class.index_bits));
            delta.compressed_tag_bits += u64::from(class.tag_bits);
            delta.dict_index_bits += u64::from(class.index_bits);
        }
        None => {
            w.write(u32::from(RAW_TAG), u32::from(RAW_TAG_BITS));
            w.write(u32::from(value), 16);
            delta.raw_tag_bits += u64::from(RAW_TAG_BITS);
            delta.raw_literal_bits += 16;
            delta.raw_halfwords += 1;
        }
    }
}

/// Encodes one block; returns (bytes, cumulative decode bits, raw-escape
/// mask, stats delta). Shared with the frame packer, which encodes groups
/// in parallel with the same dictionaries.
pub(crate) fn encode_block(
    words: &[u32],
    high_dict: &Dictionary,
    low_dict: &Dictionary,
    config: &CompressionConfig,
) -> (Vec<u8>, [u16; BLOCK_INSNS as usize + 1], u16, BlockDelta) {
    debug_assert_eq!(words.len(), BLOCK_INSNS as usize);

    let mut delta = BlockDelta::default();
    let mut w = BitWriter::new();
    let mut cum = [0u16; BLOCK_INSNS as usize + 1];
    let mut raw_mask = 0u16;
    // Mode flag: 0 = compressed block.
    w.write(0, 1);
    delta.compressed_tag_bits += 1;
    for (j, &word) in words.iter().enumerate() {
        let raw_before = delta.raw_halfwords;
        encode_halfword(
            &mut w,
            (word >> 16) as u16,
            high_dict,
            &HIGH_CLASSES,
            &mut delta,
        );
        encode_halfword(&mut w, word as u16, low_dict, &LOW_CLASSES, &mut delta);
        if delta.raw_halfwords > raw_before {
            raw_mask |= 1 << j;
        }
        cum[j + 1] = w.bit_len() as u16;
    }

    let expands = w.bit_len() > u64::from(BLOCK_INSNS) * 32;
    if config.raw_block_fallback && expands {
        // Store the block non-compressed: flag 1, then 16 raw words.
        let mut delta = BlockDelta {
            raw_tag_bits: 1,
            raw_blocks: 1,
            ..BlockDelta::default()
        };
        let mut w = BitWriter::new();
        w.write(1, 1);
        let mut cum = [0u16; BLOCK_INSNS as usize + 1];
        for (j, &word) in words.iter().enumerate() {
            w.write(word, 32);
            cum[j + 1] = w.bit_len() as u16;
            delta.raw_literal_bits += 32;
        }
        delta.pad_bits += u64::from(w.align_to_byte());
        return (w.into_bytes(), cum, u16::MAX, delta);
    }

    delta.pad_bits += u64::from(w.align_to_byte());
    (w.into_bytes(), cum, raw_mask, delta)
}

/// Decodes one half-word codeword; the `bool` is `true` when it was a raw
/// escape rather than a dictionary hit.
fn decode_halfword(
    reader: &mut BitReader<'_>,
    dict: &Dictionary,
    classes: &[CodewordClass; 5],
    high: bool,
) -> Result<(u16, bool), DecompressError> {
    let first_two = reader.read(2)? as u8;
    let (tag, tag_bits) = if first_two <= 0b01 {
        (first_two, 2u8)
    } else {
        ((first_two << 1) | reader.read(1)? as u8, 3u8)
    };
    if tag == RAW_TAG {
        return Ok((reader.read(16)? as u16, true));
    }
    let class = classes
        .iter()
        .find(|c| c.tag == tag && c.tag_bits == tag_bits)
        .expect("every non-raw tag pattern maps to a class");
    let rank = class.base + reader.read(u32::from(class.index_bits))? as u16;
    dict.value(rank)
        .map(|v| (v, false))
        .ok_or(DecompressError::BadDictIndex {
            high,
            rank,
            dict_len: dict.len(),
        })
}

fn decode_block(
    reader: &mut BitReader<'_>,
    high_dict: &Dictionary,
    low_dict: &Dictionary,
) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
    decode_block_tracking(reader, high_dict, low_dict).map(|(words, _, _)| words)
}

/// Decodes a block while recording the cumulative bit position after each
/// instruction and which instructions raw-escaped — used by the ROM loader
/// to rebuild decode-timing metadata from the stream alone.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_block_tracking(
    reader: &mut BitReader<'_>,
    high_dict: &Dictionary,
    low_dict: &Dictionary,
) -> Result<
    (
        [u32; BLOCK_INSNS as usize],
        [u16; BLOCK_INSNS as usize + 1],
        u16,
    ),
    DecompressError,
> {
    let start = reader.bit_pos();
    let mut out = [0u32; BLOCK_INSNS as usize];
    let mut cum = [0u16; BLOCK_INSNS as usize + 1];
    let raw = reader.read(1)? == 1;
    let mut raw_mask = if raw { u16::MAX } else { 0 };
    for (j, slot) in out.iter_mut().enumerate() {
        if raw {
            *slot = reader.read(32)?;
        } else {
            let (high, high_raw) = decode_halfword(reader, high_dict, &HIGH_CLASSES, true)?;
            let (low, low_raw) = decode_halfword(reader, low_dict, &LOW_CLASSES, false)?;
            if high_raw || low_raw {
                raw_mask |= 1 << j;
            }
            *slot = (u32::from(high) << 16) | u32::from(low);
        }
        cum[j + 1] = (reader.bit_pos() - start) as u16;
    }
    Ok((out, cum, raw_mask))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repetitive_text(n: usize) -> Vec<u32> {
        // A handful of frequent words plus occasional unique constants.
        (0..n)
            .map(|i| match i % 16 {
                15 => 0x3c01_0000 | (i as u32).wrapping_mul(2654435761) >> 16, // rare constants
                k => 0x2402_0000 | (k as u32),
            })
            .collect()
    }

    #[test]
    fn roundtrip_exact() {
        let text = repetitive_text(200);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert_eq!(img.decompress_all().unwrap(), text);
    }

    #[test]
    fn per_block_decode_matches_source() {
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        for b in 0..img.num_blocks() {
            let words = img.decompress_block(b).unwrap();
            for (j, &w) in words.iter().enumerate() {
                let idx = b as usize * 16 + j;
                if idx < text.len() {
                    assert_eq!(w, text[idx], "block {b} insn {j}");
                }
            }
        }
    }

    #[test]
    fn repetitive_code_compresses_well() {
        let text = vec![0x2402_0001u32; 512];
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert!(
            img.stats().compression_ratio() < 0.35,
            "uniform text should compress hard, got {}",
            img.stats().compression_ratio()
        );
    }

    #[test]
    fn random_code_falls_back_to_raw_blocks() {
        // Words that never repeat: nothing earns a dictionary slot.
        let text: Vec<u32> = (0..256u32)
            .map(|i| i.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert!(
            img.stats().raw_blocks > 0,
            "incompressible blocks must fall back"
        );
        assert_eq!(img.decompress_all().unwrap(), text);
        // With fallback, expansion is bounded: flag bit + pad per block + tables.
        assert!(img.stats().compression_ratio() < 1.15);
    }

    #[test]
    fn disabling_fallback_expands_random_code() {
        let text: Vec<u32> = (0..256u32)
            .map(|i| i.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        let cfg = CompressionConfig {
            raw_block_fallback: false,
            ..CompressionConfig::default()
        };
        let img = CodePackImage::compress(&text, &cfg);
        assert_eq!(img.stats().raw_blocks, 0);
        assert!(
            img.stats().compression_ratio() > 1.0,
            "raw escapes cost 19 bits per half-word"
        );
        assert_eq!(img.decompress_all().unwrap(), text);
    }

    #[test]
    fn index_table_has_one_entry_per_group() {
        let text = repetitive_text(100); // pads to 128 insns = 8 blocks = 4 groups
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert_eq!(img.num_blocks(), 8);
        assert_eq!(img.num_groups(), 4);
        assert_eq!(img.stats().index_table_bytes, 16);
    }

    #[test]
    fn index_offsets_match_block_info() {
        let text = repetitive_text(256);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        for b in 0..img.num_blocks() {
            assert_eq!(
                img.block_offset_via_index(b).unwrap(),
                img.block_info(b).byte_offset,
                "index table and layout disagree for block {b}"
            );
        }
    }

    #[test]
    fn cum_bits_are_monotonic_and_match_length() {
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        for b in 0..img.num_blocks() {
            let info = img.block_info(b);
            for j in 0..16 {
                assert!(info.cum_bits[j] < info.cum_bits[j + 1]);
            }
            let padded = info.byte_len * 8;
            assert!(info.cum_bits[16] <= padded && padded < info.cum_bits[16] + 8);
        }
    }

    #[test]
    fn raw_mask_marks_escaped_instructions() {
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        for b in 0..img.num_blocks() {
            let info = img.block_info(b);
            let offset = img.block_offset_via_index(b).unwrap() as usize;
            let mut reader = BitReader::new(&img.compressed_bytes()[offset..]);
            let (_, _, decoded_mask) =
                decode_block_tracking(&mut reader, img.high_dict(), img.low_dict()).unwrap();
            assert_eq!(
                info.raw_mask, decoded_mask,
                "compressor and decoder disagree on raw escapes in block {b}"
            );
        }
        // The rare-constant slot (insn 15 of each block) raw-escapes its
        // unique low half-word; the common immediates never do.
        assert_ne!(img.block_info(0).raw_mask & (1 << 15), 0);
        assert_eq!(img.block_info(0).raw_mask & 1, 0);
    }

    #[test]
    fn raw_blocks_set_every_mask_bit() {
        let text: Vec<u32> = (0..64u32)
            .map(|i| i.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let raw_block = (0..img.num_blocks())
            .find(|&b| img.block_info(b).raw_mask == u16::MAX)
            .expect("incompressible text produces at least one raw block");
        let _ = raw_block;
    }

    #[test]
    fn stats_partition_the_image() {
        let text = repetitive_text(512);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let s = img.stats();
        let sum: f64 = s.table4_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(
            s.total_bytes(),
            s.index_table_bytes + s.dictionary_bytes + img.compressed_bytes().len() as u64
        );
    }

    #[test]
    fn out_of_range_block_is_an_error() {
        let text = repetitive_text(32);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert!(matches!(
            img.decompress_block(99),
            Err(DecompressError::BadBlock { block: 99, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_text_panics() {
        let _ = CodePackImage::compress(&[], &CompressionConfig::default());
    }

    #[test]
    fn out_of_range_corruption_is_rejected() {
        let text = repetitive_text(32);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let len = img.compressed_bytes().len();
        let err = img.clone().with_corrupted_bytes(len, 0xff).unwrap_err();
        assert_eq!(err, CorruptionOutOfRange { at: len, len });
        assert!(err.to_string().contains("outside"));
        let ok = img.with_corrupted_bytes(0, 0xff).unwrap();
        assert_eq!(ok.compressed_bytes()[0], 0xff);
    }

    #[test]
    fn padding_words_do_not_leak_into_output() {
        let text = repetitive_text(17); // pads to 32
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert_eq!(img.len_insns(), 17);
        assert_eq!(img.decompress_all().unwrap().len(), 17);
    }

    #[test]
    fn trailing_padding_after_last_block_decodes_in_both_backends() {
        // Regression (issue 6): a block must decode from exactly its own
        // padded bytes — pad bits after the final codeword are ignored, and
        // the end of the slice right after them must not trip either
        // backend's end-of-stream handling.
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let fast = img.fast_decoder();
        let mut saw_padded_block = false;
        for b in 0..img.num_blocks() {
            let info = img.block_info(b);
            let start = info.byte_offset as usize;
            let alone = &img.compressed_bytes()[start..start + usize::from(info.byte_len)];
            saw_padded_block |= usize::from(info.cum_bits[16]) < alone.len() * 8;
            let whole_stream = img.decompress_block(b).unwrap();
            let scalar = decode_block_bytes(alone, img.high_dict(), img.low_dict());
            assert_eq!(scalar, Ok(whole_stream), "scalar, block {b}");
            assert_eq!(fast.decode_block(alone), scalar, "fast, block {b}");
        }
        assert!(
            saw_padded_block,
            "test text must produce at least one block with trailing pad bits"
        );
    }

    #[test]
    fn cutting_the_pad_byte_truncates_in_both_backends() {
        // The last byte carries both final codeword bits and padding;
        // dropping it must yield `Truncated`, identically in both backends.
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let info = img.block_info(0);
        let start = info.byte_offset as usize;
        let cut = &img.compressed_bytes()[start..start + usize::from(info.byte_len) - 1];
        let scalar = decode_block_bytes(cut, img.high_dict(), img.low_dict());
        assert!(
            matches!(scalar, Err(DecompressError::Truncated { .. })),
            "expected truncation, got {scalar:?}"
        );
        assert_eq!(img.fast_decoder().decode_block(cut), scalar);
    }

    #[test]
    fn fast_image_apis_match_scalar_apis() {
        let text = repetitive_text(200);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert_eq!(img.decompress_all_fast().unwrap(), text);
        assert_eq!(
            img.decompress_all_with(crate::DecodeBackend::Fast),
            img.decompress_all_with(crate::DecodeBackend::Scalar)
        );
        for b in 0..img.num_blocks() {
            assert_eq!(img.decode_block_fast(b), img.decompress_block(b));
            assert_eq!(
                img.decompress_block_with(b, crate::DecodeBackend::Fast),
                img.decompress_block_with(b, crate::DecodeBackend::Scalar)
            );
        }
        // Out-of-range blocks error identically too.
        assert_eq!(
            img.decode_block_fast(img.num_blocks()),
            img.decompress_block(img.num_blocks())
        );
    }

    #[test]
    fn fast_decoder_cache_survives_corruption() {
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let _ = img.fast_decoder();
        let corrupt = img.with_corrupted_bytes(0, 0xff).unwrap();
        for b in 0..corrupt.num_blocks() {
            assert_eq!(corrupt.decode_block_fast(b), corrupt.decompress_block(b));
        }
    }

    #[test]
    fn block_decode_counters_match_direct_counted_decode() {
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let cached = img.block_decode_counters();
        assert_eq!(cached.len(), img.num_blocks() as usize);
        for b in 0..img.num_blocks() {
            let offset = img.block_offset_via_index(b).unwrap() as usize;
            let len = usize::from(img.block_info(b).byte_len);
            let (_, c) = img
                .fast_decoder()
                .decode_block_counted(&img.compressed_bytes()[offset..offset + len]);
            assert_eq!(cached[b as usize], c, "block {b}");
        }
    }

    #[test]
    fn block_decode_counters_reset_on_corruption() {
        let text = repetitive_text(64);
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        let _ = img.block_decode_counters();
        // Flip a stream byte: the cache must be recomputed from the
        // corrupted bytes, not served stale from the clean image.
        let corrupt = img.with_corrupted_bytes(0, 0xff).unwrap();
        let offset = corrupt.block_offset_via_index(0).unwrap() as usize;
        let len = usize::from(corrupt.block_info(0).byte_len);
        let (_, c) = corrupt
            .fast_decoder()
            .decode_block_counted(&corrupt.compressed_bytes()[offset..offset + len]);
        assert_eq!(corrupt.block_decode_counters()[0], c);
    }
}
