//! Fuzz-style property tests: the decoder must be total over arbitrary
//! bytes — every input yields `Ok` or a typed error, never a panic — and
//! honest images survive dictionary swaps detectably.

use codepack_core::{
    decode_block_bytes, CodePackImage, CompressionConfig, Dictionary, BLOCK_INSNS,
};
use codepack_testkit::forall;
use codepack_testkit::prop::gen;

fn small_dict(values: &[u16]) -> Dictionary {
    Dictionary::from_ranked_values(values.to_vec())
}

/// Arbitrary bytes through the block decoder: no panics, ever.
#[test]
fn arbitrary_bytes_never_panic() {
    forall!(
        cases = 256,
        (
            gen::vec_of(gen::any_int::<u8>(), 0..200),
            gen::ints(0u16..457)
        ),
        |bytes, dict_len| {
            let values: Vec<u16> = (0..dict_len).map(|i| i.wrapping_mul(257)).collect();
            let dict = small_dict(&values);
            let _ = decode_block_bytes(&bytes, &dict, &dict);
        }
    );
}

/// A stream decoded with a *shorter* dictionary than it was encoded
/// with either errors (BadDictIndex) or produces different words — it
/// must not silently reproduce the original.
#[test]
fn dictionary_mismatch_is_detected() {
    forall!(cases = 256, (gen::any_int::<u64>()), |seed| {
        let text: Vec<u32> = (0..BLOCK_INSNS)
            .map(|i| {
                let x = seed
                    .wrapping_add(u64::from(i))
                    .wrapping_mul(0x9e3779b97f4a7c15);
                ((x >> 16) as u32) & 0x0fff_0fff | 0x2000_0000
            })
            .collect();
        // Duplicate each word so it earns dictionary slots.
        let mut doubled = text.clone();
        doubled.extend_from_slice(&text);
        let image = CodePackImage::compress(&doubled, &CompressionConfig::default());
        if image.stats().dict_index_bits == 0 {
            return; // nothing went through a dictionary; nothing to test
        }
        let empty = Dictionary::from_ranked_values(vec![]);
        let result = decode_block_bytes(image.compressed_bytes(), &empty, &empty);
        match result {
            Err(_) => {}
            Ok(words) => assert_ne!(&words[..], &doubled[..16]),
        }
    });
}

/// decode_block_bytes on a valid block start always reproduces the
/// block, regardless of what follows it in the buffer.
#[test]
fn trailing_garbage_is_ignored() {
    forall!(
        cases = 256,
        (gen::vec_of(gen::any_int::<u8>(), 0..64)),
        |tail| {
            let text: Vec<u32> = (0..32).map(|i| 0x2402_0000 | (i % 5)).collect();
            let image = CodePackImage::compress(&text, &CompressionConfig::default());
            let mut buf = image.compressed_bytes().to_vec();
            buf.truncate(image.block_info(0).byte_len as usize);
            buf.extend_from_slice(&tail);
            let words = decode_block_bytes(&buf, image.high_dict(), image.low_dict())
                .expect("valid prefix");
            assert_eq!(&words[..], &text[..16]);
        }
    );
}

#[test]
fn empty_input_is_truncation() {
    let d = small_dict(&[1, 2, 3]);
    assert!(decode_block_bytes(&[], &d, &d).is_err());
}
