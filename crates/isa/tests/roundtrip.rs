//! Property tests: encode/decode round-trips and decode strictness.

use codepack_isa::{decode, encode, FReg, Instruction, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

/// Every constructible instruction, with arbitrary operand values.
fn arb_insn() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    let r = arb_reg;
    let f = arb_freg;
    let sh = || 0u8..32;
    let off = any::<i16>;
    let u = any::<u16>;
    let tgt = || 0u32..(1 << 26);
    prop_oneof![
        (r(), r(), sh()).prop_map(|(rd, rt, shamt)| Sll { rd, rt, shamt }),
        (r(), r(), sh()).prop_map(|(rd, rt, shamt)| Srl { rd, rt, shamt }),
        (r(), r(), sh()).prop_map(|(rd, rt, shamt)| Sra { rd, rt, shamt }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Sllv { rd, rt, rs }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Srlv { rd, rt, rs }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Srav { rd, rt, rs }),
        r().prop_map(|rs| Jr { rs }),
        (r(), r()).prop_map(|(rd, rs)| Jalr { rd, rs }),
        r().prop_map(|rd| Mfhi { rd }),
        r().prop_map(|rd| Mflo { rd }),
        (r(), r()).prop_map(|(rs, rt)| Mult { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Multu { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Div { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Divu { rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Addu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Subu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| And { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Or { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Nor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Slt { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Sltu { rd, rs, rt }),
        Just(Syscall),
        Just(Break),
        (r(), r(), off()).prop_map(|(rs, rt, offset)| Beq { rs, rt, offset }),
        (r(), r(), off()).prop_map(|(rs, rt, offset)| Bne { rs, rt, offset }),
        (r(), off()).prop_map(|(rs, offset)| Blez { rs, offset }),
        (r(), off()).prop_map(|(rs, offset)| Bgtz { rs, offset }),
        (r(), off()).prop_map(|(rs, offset)| Bltz { rs, offset }),
        (r(), off()).prop_map(|(rs, offset)| Bgez { rs, offset }),
        (r(), r(), off()).prop_map(|(rt, rs, imm)| Addiu { rt, rs, imm }),
        (r(), r(), off()).prop_map(|(rt, rs, imm)| Slti { rt, rs, imm }),
        (r(), r(), off()).prop_map(|(rt, rs, imm)| Sltiu { rt, rs, imm }),
        (r(), r(), u()).prop_map(|(rt, rs, imm)| Andi { rt, rs, imm }),
        (r(), r(), u()).prop_map(|(rt, rs, imm)| Ori { rt, rs, imm }),
        (r(), r(), u()).prop_map(|(rt, rs, imm)| Xori { rt, rs, imm }),
        (r(), u()).prop_map(|(rt, imm)| Lui { rt, imm }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Lb { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Lh { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Lw { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Lbu { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Lhu { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Sb { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Sh { rt, base, offset }),
        (r(), r(), off()).prop_map(|(rt, base, offset)| Sw { rt, base, offset }),
        tgt().prop_map(|target| J { target }),
        tgt().prop_map(|target| Jal { target }),
        (f(), f(), f()).prop_map(|(fd, fs, ft)| AddS { fd, fs, ft }),
        (f(), f(), f()).prop_map(|(fd, fs, ft)| SubS { fd, fs, ft }),
        (f(), f(), f()).prop_map(|(fd, fs, ft)| MulS { fd, fs, ft }),
        (f(), f(), f()).prop_map(|(fd, fs, ft)| DivS { fd, fs, ft }),
        (f(), f()).prop_map(|(fd, fs)| MovS { fd, fs }),
        (f(), f()).prop_map(|(fs, ft)| CEqS { fs, ft }),
        (f(), f()).prop_map(|(fs, ft)| CLtS { fs, ft }),
        (f(), f()).prop_map(|(fs, ft)| CLeS { fs, ft }),
        off().prop_map(|offset| Bc1t { offset }),
        off().prop_map(|offset| Bc1f { offset }),
        (r(), f()).prop_map(|(rt, fs)| Mtc1 { rt, fs }),
        (r(), f()).prop_map(|(rt, fs)| Mfc1 { rt, fs }),
        (f(), f()).prop_map(|(fd, fs)| CvtSW { fd, fs }),
        (f(), f()).prop_map(|(fd, fs)| CvtWS { fd, fs }),
        (f(), r(), off()).prop_map(|(ft, base, offset)| Lwc1 { ft, base, offset }),
        (f(), r(), off()).prop_map(|(ft, base, offset)| Swc1 { ft, base, offset }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every instruction.
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let word = encode(insn);
        prop_assert_eq!(decode(word), Ok(insn));
    }

    /// Any word that decodes successfully re-encodes to the identical word
    /// (decode is injective on its accepted domain).
    #[test]
    fn decode_encode_is_identity_on_valid_words(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            prop_assert_eq!(encode(insn), word);
        }
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn disassembly_is_total(insn in arb_insn()) {
        prop_assert!(!insn.to_string().is_empty());
    }
}
