//! Property tests: encode/decode round-trips and decode strictness.

use codepack_isa::{decode, encode, FReg, Instruction, Reg};
use codepack_testkit::forall;
use codepack_testkit::prop::{gen, Gen};
use codepack_testkit::Rng;

fn arb_reg() -> Gen<Reg> {
    gen::ints(0u8..32).map(Reg::new)
}

fn arb_freg() -> Gen<FReg> {
    gen::ints(0u8..32).map(FReg::new)
}

/// Every constructible instruction, with arbitrary operand values.
fn arb_insn() -> Gen<Instruction> {
    use Instruction::*;
    // One draw function instead of ~60 boxed arms: pick a constructor
    // index, then fill its operands from the same stream.
    Gen::new(|rng: &mut Rng| {
        let r = |rng: &mut Rng| Reg::new(rng.gen_range(0u8..32));
        let f = |rng: &mut Rng| FReg::new(rng.gen_range(0u8..32));
        let sh = |rng: &mut Rng| rng.gen_range(0u8..32);
        let off = |rng: &mut Rng| rng.gen_range(i16::MIN..=i16::MAX);
        let u = |rng: &mut Rng| rng.gen_range(u16::MIN..=u16::MAX);
        let tgt = |rng: &mut Rng| rng.gen_range(0u32..(1 << 26));
        match rng.gen_range(0..60) {
            0 => Sll {
                rd: r(rng),
                rt: r(rng),
                shamt: sh(rng),
            },
            1 => Srl {
                rd: r(rng),
                rt: r(rng),
                shamt: sh(rng),
            },
            2 => Sra {
                rd: r(rng),
                rt: r(rng),
                shamt: sh(rng),
            },
            3 => Sllv {
                rd: r(rng),
                rt: r(rng),
                rs: r(rng),
            },
            4 => Srlv {
                rd: r(rng),
                rt: r(rng),
                rs: r(rng),
            },
            5 => Srav {
                rd: r(rng),
                rt: r(rng),
                rs: r(rng),
            },
            6 => Jr { rs: r(rng) },
            7 => Jalr {
                rd: r(rng),
                rs: r(rng),
            },
            8 => Mfhi { rd: r(rng) },
            9 => Mflo { rd: r(rng) },
            10 => Mult {
                rs: r(rng),
                rt: r(rng),
            },
            11 => Multu {
                rs: r(rng),
                rt: r(rng),
            },
            12 => Div {
                rs: r(rng),
                rt: r(rng),
            },
            13 => Divu {
                rs: r(rng),
                rt: r(rng),
            },
            14 => Addu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            15 => Subu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            16 => And {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            17 => Or {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            18 => Xor {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            19 => Nor {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            20 => Slt {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            21 => Sltu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            22 => Syscall,
            23 => Break,
            24 => Beq {
                rs: r(rng),
                rt: r(rng),
                offset: off(rng),
            },
            25 => Bne {
                rs: r(rng),
                rt: r(rng),
                offset: off(rng),
            },
            26 => Blez {
                rs: r(rng),
                offset: off(rng),
            },
            27 => Bgtz {
                rs: r(rng),
                offset: off(rng),
            },
            28 => Bltz {
                rs: r(rng),
                offset: off(rng),
            },
            29 => Bgez {
                rs: r(rng),
                offset: off(rng),
            },
            30 => Addiu {
                rt: r(rng),
                rs: r(rng),
                imm: off(rng),
            },
            31 => Slti {
                rt: r(rng),
                rs: r(rng),
                imm: off(rng),
            },
            32 => Sltiu {
                rt: r(rng),
                rs: r(rng),
                imm: off(rng),
            },
            33 => Andi {
                rt: r(rng),
                rs: r(rng),
                imm: u(rng),
            },
            34 => Ori {
                rt: r(rng),
                rs: r(rng),
                imm: u(rng),
            },
            35 => Xori {
                rt: r(rng),
                rs: r(rng),
                imm: u(rng),
            },
            36 => Lui {
                rt: r(rng),
                imm: u(rng),
            },
            37 => Lb {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            38 => Lh {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            39 => Lw {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            40 => Lbu {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            41 => Lhu {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            42 => Sb {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            43 => Sh {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            44 => Sw {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            45 => J { target: tgt(rng) },
            46 => Jal { target: tgt(rng) },
            47 => AddS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            48 => SubS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            49 => MulS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            50 => DivS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            51 => MovS {
                fd: f(rng),
                fs: f(rng),
            },
            52 => CEqS {
                fs: f(rng),
                ft: f(rng),
            },
            53 => CLtS {
                fs: f(rng),
                ft: f(rng),
            },
            54 => CLeS {
                fs: f(rng),
                ft: f(rng),
            },
            55 => Bc1t { offset: off(rng) },
            56 => Bc1f { offset: off(rng) },
            57 => Mtc1 {
                rt: r(rng),
                fs: f(rng),
            },
            58 => Mfc1 {
                rt: r(rng),
                fs: f(rng),
            },
            59 => CvtSW {
                fd: f(rng),
                fs: f(rng),
            },
            _ => CvtWS {
                fd: f(rng),
                fs: f(rng),
            },
        }
    })
}

/// decode(encode(i)) == i for every instruction.
#[test]
fn encode_decode_roundtrip() {
    forall!(cases = 2048, (arb_insn()), |insn| {
        let word = encode(insn);
        assert_eq!(decode(word), Ok(insn));
    });
}

/// Any word that decodes successfully re-encodes to the identical word
/// (decode is injective on its accepted domain).
#[test]
fn decode_encode_is_identity_on_valid_words() {
    forall!(cases = 4096, (gen::any_int::<u32>()), |word| {
        if let Ok(insn) = decode(word) {
            assert_eq!(encode(insn), word);
        }
    });
}

/// Disassembly never panics and is never empty.
#[test]
fn disassembly_is_total() {
    forall!(cases = 1024, (arb_insn()), |insn| {
        assert!(!insn.to_string().is_empty());
    });
}

/// The register-based generators used above stay in encoding range.
#[test]
fn register_generators_cover_the_file() {
    forall!(cases = 256, (arb_reg(), arb_freg()), |r, f| {
        assert!(r.index() < 32);
        assert!(f.index() < 32);
    });
}

/// encode -> decode -> disassemble -> parse round-trips every
/// instruction class: the assembly text is a faithful, machine-readable
/// rendering of the instruction, not just a pretty-printer.
#[test]
fn encode_decode_disasm_parse_roundtrip() {
    use codepack_isa::parse_asm;
    forall!(cases = 4096, (arb_insn()), |insn| {
        let word = encode(insn);
        let decoded = decode(word).expect("constructible instructions decode");
        let text = decoded.to_string();
        let parsed = parse_asm(&text).unwrap_or_else(|e| panic!("parse_asm({text:?}) failed: {e}"));
        assert_eq!(parsed, insn, "asm text {text:?}");
    });
}

/// The typed decode errors carry the offending word, the address, and the
/// precise reason.
#[test]
fn known_illegal_encodings_carry_typed_errors() {
    use codepack_isa::{decode_at, DecodeErrorKind};

    // Primary opcode 0x3f is unassigned.
    let word = 0xffff_ffff;
    let e = decode_at(0x0040_0040, word).unwrap_err();
    assert_eq!(e.addr, 0x0040_0040);
    assert_eq!(e.word, word);
    assert_eq!(e.kind, DecodeErrorKind::UnknownOpcode { opcode: 0x3f });

    // SPECIAL (opcode 0) with unassigned funct 0x3f.
    let e = decode(0x0000_003f).unwrap_err();
    assert_eq!(e.kind, DecodeErrorKind::UnknownFunct { funct: 0x3f });

    // sll with a nonzero rs field (bits 25..21 are reserved-zero).
    let sll_bad_rs = 1 << 21;
    let e = decode(sll_bad_rs).unwrap_err();
    assert_eq!(e.kind, DecodeErrorKind::ReservedFieldNonzero);

    // REGIMM (opcode 1) with unassigned rt selector 0x1f.
    let regimm_bad = (1 << 26) | (0x1f << 16);
    let e = decode(regimm_bad).unwrap_err();
    assert_eq!(e.kind, DecodeErrorKind::UnknownRegimm { rt: 0x1f });

    // COP1 with unassigned format 0x1f.
    let cop1_bad_fmt = (0x11 << 26) | (0x1f << 21);
    let e = decode(cop1_bad_fmt).unwrap_err();
    assert_eq!(e.kind, DecodeErrorKind::UnknownCop1Format { fmt: 0x1f });

    // Every error's Display names the word; decode_at's also the address.
    let e = decode_at(0x0040_1234, 0xffff_ffff).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("0xffffffff"), "{msg}");
    assert!(msg.contains("0x00401234"), "{msg}");
}

/// decode() and decode_at() agree on every word: same acceptance, same
/// instruction, same error kind.
#[test]
fn decode_and_decode_at_agree() {
    use codepack_isa::decode_at;
    forall!(cases = 4096, (gen::any_int::<u32>()), |word| {
        match (decode(word), decode_at(0x0040_0000, word)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => {
                assert_eq!(a.kind, b.kind);
                assert_eq!(b.word, word);
            }
            (a, b) => panic!("disagreement on {word:#010x}: {a:?} vs {b:?}"),
        }
    });
}
