//! Property tests: encode/decode round-trips and decode strictness.

use codepack_isa::{decode, encode, FReg, Instruction, Reg};
use codepack_testkit::forall;
use codepack_testkit::prop::{gen, Gen};
use codepack_testkit::Rng;

fn arb_reg() -> Gen<Reg> {
    gen::ints(0u8..32).map(Reg::new)
}

fn arb_freg() -> Gen<FReg> {
    gen::ints(0u8..32).map(FReg::new)
}

/// Every constructible instruction, with arbitrary operand values.
fn arb_insn() -> Gen<Instruction> {
    use Instruction::*;
    // One draw function instead of ~60 boxed arms: pick a constructor
    // index, then fill its operands from the same stream.
    Gen::new(|rng: &mut Rng| {
        let r = |rng: &mut Rng| Reg::new(rng.gen_range(0u8..32));
        let f = |rng: &mut Rng| FReg::new(rng.gen_range(0u8..32));
        let sh = |rng: &mut Rng| rng.gen_range(0u8..32);
        let off = |rng: &mut Rng| rng.gen_range(i16::MIN..=i16::MAX);
        let u = |rng: &mut Rng| rng.gen_range(u16::MIN..=u16::MAX);
        let tgt = |rng: &mut Rng| rng.gen_range(0u32..(1 << 26));
        match rng.gen_range(0..60) {
            0 => Sll {
                rd: r(rng),
                rt: r(rng),
                shamt: sh(rng),
            },
            1 => Srl {
                rd: r(rng),
                rt: r(rng),
                shamt: sh(rng),
            },
            2 => Sra {
                rd: r(rng),
                rt: r(rng),
                shamt: sh(rng),
            },
            3 => Sllv {
                rd: r(rng),
                rt: r(rng),
                rs: r(rng),
            },
            4 => Srlv {
                rd: r(rng),
                rt: r(rng),
                rs: r(rng),
            },
            5 => Srav {
                rd: r(rng),
                rt: r(rng),
                rs: r(rng),
            },
            6 => Jr { rs: r(rng) },
            7 => Jalr {
                rd: r(rng),
                rs: r(rng),
            },
            8 => Mfhi { rd: r(rng) },
            9 => Mflo { rd: r(rng) },
            10 => Mult {
                rs: r(rng),
                rt: r(rng),
            },
            11 => Multu {
                rs: r(rng),
                rt: r(rng),
            },
            12 => Div {
                rs: r(rng),
                rt: r(rng),
            },
            13 => Divu {
                rs: r(rng),
                rt: r(rng),
            },
            14 => Addu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            15 => Subu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            16 => And {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            17 => Or {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            18 => Xor {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            19 => Nor {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            20 => Slt {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            21 => Sltu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            22 => Syscall,
            23 => Break,
            24 => Beq {
                rs: r(rng),
                rt: r(rng),
                offset: off(rng),
            },
            25 => Bne {
                rs: r(rng),
                rt: r(rng),
                offset: off(rng),
            },
            26 => Blez {
                rs: r(rng),
                offset: off(rng),
            },
            27 => Bgtz {
                rs: r(rng),
                offset: off(rng),
            },
            28 => Bltz {
                rs: r(rng),
                offset: off(rng),
            },
            29 => Bgez {
                rs: r(rng),
                offset: off(rng),
            },
            30 => Addiu {
                rt: r(rng),
                rs: r(rng),
                imm: off(rng),
            },
            31 => Slti {
                rt: r(rng),
                rs: r(rng),
                imm: off(rng),
            },
            32 => Sltiu {
                rt: r(rng),
                rs: r(rng),
                imm: off(rng),
            },
            33 => Andi {
                rt: r(rng),
                rs: r(rng),
                imm: u(rng),
            },
            34 => Ori {
                rt: r(rng),
                rs: r(rng),
                imm: u(rng),
            },
            35 => Xori {
                rt: r(rng),
                rs: r(rng),
                imm: u(rng),
            },
            36 => Lui {
                rt: r(rng),
                imm: u(rng),
            },
            37 => Lb {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            38 => Lh {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            39 => Lw {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            40 => Lbu {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            41 => Lhu {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            42 => Sb {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            43 => Sh {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            44 => Sw {
                rt: r(rng),
                base: r(rng),
                offset: off(rng),
            },
            45 => J { target: tgt(rng) },
            46 => Jal { target: tgt(rng) },
            47 => AddS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            48 => SubS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            49 => MulS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            50 => DivS {
                fd: f(rng),
                fs: f(rng),
                ft: f(rng),
            },
            51 => MovS {
                fd: f(rng),
                fs: f(rng),
            },
            52 => CEqS {
                fs: f(rng),
                ft: f(rng),
            },
            53 => CLtS {
                fs: f(rng),
                ft: f(rng),
            },
            54 => CLeS {
                fs: f(rng),
                ft: f(rng),
            },
            55 => Bc1t { offset: off(rng) },
            56 => Bc1f { offset: off(rng) },
            57 => Mtc1 {
                rt: r(rng),
                fs: f(rng),
            },
            58 => Mfc1 {
                rt: r(rng),
                fs: f(rng),
            },
            59 => CvtSW {
                fd: f(rng),
                fs: f(rng),
            },
            _ => CvtWS {
                fd: f(rng),
                fs: f(rng),
            },
        }
    })
}

/// decode(encode(i)) == i for every instruction.
#[test]
fn encode_decode_roundtrip() {
    forall!(cases = 2048, (arb_insn()), |insn| {
        let word = encode(insn);
        assert_eq!(decode(word), Ok(insn));
    });
}

/// Any word that decodes successfully re-encodes to the identical word
/// (decode is injective on its accepted domain).
#[test]
fn decode_encode_is_identity_on_valid_words() {
    forall!(cases = 4096, (gen::any_int::<u32>()), |word| {
        if let Ok(insn) = decode(word) {
            assert_eq!(encode(insn), word);
        }
    });
}

/// Disassembly never panics and is never empty.
#[test]
fn disassembly_is_total() {
    forall!(cases = 1024, (arb_insn()), |insn| {
        assert!(!insn.to_string().is_empty());
    });
}

/// The register-based generators used above stay in encoding range.
#[test]
fn register_generators_cover_the_file() {
    forall!(cases = 256, (arb_reg(), arb_freg()), |r, f| {
        assert!(r.index() < 32);
        assert!(f.index() < 32);
    });
}
