//! The decoded instruction form.

use crate::{FReg, Reg};

/// A decoded SR32 instruction.
///
/// The set is a practical MIPS-IV-like subset: full integer ALU, shifts,
/// multiply/divide with HI/LO, all load/store widths, branches, jumps, calls,
/// and a single-precision floating-point subset (enough for the
/// media-style kernels the paper's MediaBench workloads represent).
///
/// Branch `offset`s are in **instructions** relative to the *next* PC
/// (PC + 4), matching MIPS semantics but without delay slots. Jump `target`s
/// are 26-bit instruction indices into the current 256 MiB region.
///
/// ```
/// use codepack_isa::{Instruction, Reg};
/// let i = Instruction::Lw { rt: Reg::T0, base: Reg::SP, offset: 16 };
/// assert!(i.is_load());
/// assert!(!i.is_control());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instruction {
    // --- R-type shifts ---
    /// Shift left logical by immediate. `Sll {rd: Reg::ZERO, rt: Reg::ZERO, shamt: 0}` is the canonical NOP.
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// Shift right logical by immediate.
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// Shift right arithmetic by immediate.
    Sra { rd: Reg, rt: Reg, shamt: u8 },
    /// Shift left logical by register.
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    /// Shift right logical by register.
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    /// Shift right arithmetic by register.
    Srav { rd: Reg, rt: Reg, rs: Reg },

    // --- R-type jumps ---
    /// Jump to register.
    Jr { rs: Reg },
    /// Jump to register and link into `rd`.
    Jalr { rd: Reg, rs: Reg },

    // --- HI/LO ---
    /// Move from HI.
    Mfhi { rd: Reg },
    /// Move from LO.
    Mflo { rd: Reg },
    /// Signed 32×32→64 multiply into HI:LO.
    Mult { rs: Reg, rt: Reg },
    /// Unsigned multiply into HI:LO.
    Multu { rs: Reg, rt: Reg },
    /// Signed divide: LO = quotient, HI = remainder.
    Div { rs: Reg, rt: Reg },
    /// Unsigned divide.
    Divu { rs: Reg, rt: Reg },

    // --- R-type ALU ---
    /// Add (wrapping; SR32 has no overflow traps).
    Addu { rd: Reg, rs: Reg, rt: Reg },
    /// Subtract (wrapping).
    Subu { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise AND.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise OR.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise XOR.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise NOR.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// Set on less than (signed).
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// Set on less than (unsigned).
    Sltu { rd: Reg, rs: Reg, rt: Reg },

    /// Environment call. SR32 uses `$v0 == 10` as "halt".
    Syscall,
    /// Breakpoint (treated as a fatal trap by the executor).
    Break,

    // --- branches ---
    /// Branch if equal.
    Beq { rs: Reg, rt: Reg, offset: i16 },
    /// Branch if not equal.
    Bne { rs: Reg, rt: Reg, offset: i16 },
    /// Branch if less than or equal to zero (signed).
    Blez { rs: Reg, offset: i16 },
    /// Branch if greater than zero (signed).
    Bgtz { rs: Reg, offset: i16 },
    /// Branch if less than zero (signed).
    Bltz { rs: Reg, offset: i16 },
    /// Branch if greater than or equal to zero (signed).
    Bgez { rs: Reg, offset: i16 },

    // --- I-type ALU ---
    /// Add immediate (wrapping).
    Addiu { rt: Reg, rs: Reg, imm: i16 },
    /// Set on less than immediate (signed).
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// Set on less than immediate (unsigned comparison of sign-extended imm).
    Sltiu { rt: Reg, rs: Reg, imm: i16 },
    /// AND with zero-extended immediate.
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// OR with zero-extended immediate.
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// XOR with zero-extended immediate.
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// Load upper immediate.
    Lui { rt: Reg, imm: u16 },

    // --- loads/stores ---
    /// Load signed byte.
    Lb { rt: Reg, base: Reg, offset: i16 },
    /// Load signed half-word.
    Lh { rt: Reg, base: Reg, offset: i16 },
    /// Load word.
    Lw { rt: Reg, base: Reg, offset: i16 },
    /// Load unsigned byte.
    Lbu { rt: Reg, base: Reg, offset: i16 },
    /// Load unsigned half-word.
    Lhu { rt: Reg, base: Reg, offset: i16 },
    /// Store byte.
    Sb { rt: Reg, base: Reg, offset: i16 },
    /// Store half-word.
    Sh { rt: Reg, base: Reg, offset: i16 },
    /// Store word.
    Sw { rt: Reg, base: Reg, offset: i16 },

    // --- jumps ---
    /// Unconditional jump to a 26-bit instruction index.
    J { target: u32 },
    /// Jump and link (`$ra = PC + 4`).
    Jal { target: u32 },

    // --- single-precision floating point ---
    /// FP add.
    AddS { fd: FReg, fs: FReg, ft: FReg },
    /// FP subtract.
    SubS { fd: FReg, fs: FReg, ft: FReg },
    /// FP multiply.
    MulS { fd: FReg, fs: FReg, ft: FReg },
    /// FP divide.
    DivS { fd: FReg, fs: FReg, ft: FReg },
    /// FP register move.
    MovS { fd: FReg, fs: FReg },
    /// FP compare equal — sets the FP condition flag.
    CEqS { fs: FReg, ft: FReg },
    /// FP compare less-than.
    CLtS { fs: FReg, ft: FReg },
    /// FP compare less-or-equal.
    CLeS { fs: FReg, ft: FReg },
    /// Branch if FP condition flag is true.
    Bc1t { offset: i16 },
    /// Branch if FP condition flag is false.
    Bc1f { offset: i16 },
    /// Move integer register to FP register (bit pattern).
    Mtc1 { rt: Reg, fs: FReg },
    /// Move FP register to integer register (bit pattern).
    Mfc1 { rt: Reg, fs: FReg },
    /// Convert word (int bits in `fs`) to single.
    CvtSW { fd: FReg, fs: FReg },
    /// Convert single to word (truncating).
    CvtWS { fd: FReg, fs: FReg },
    /// Load word to FP register.
    Lwc1 { ft: FReg, base: Reg, offset: i16 },
    /// Store FP register word.
    Swc1 { ft: FReg, base: Reg, offset: i16 },
}

impl Instruction {
    /// The canonical no-operation instruction (`sll $zero, $zero, 0`,
    /// encoding `0x0000_0000`).
    pub const NOP: Instruction = Instruction::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Is this a memory load (integer or FP)?
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instruction::Lb { .. }
                | Instruction::Lh { .. }
                | Instruction::Lw { .. }
                | Instruction::Lbu { .. }
                | Instruction::Lhu { .. }
                | Instruction::Lwc1 { .. }
        )
    }

    /// Is this a memory store (integer or FP)?
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Instruction::Sb { .. }
                | Instruction::Sh { .. }
                | Instruction::Sw { .. }
                | Instruction::Swc1 { .. }
        )
    }

    /// Is this a control-transfer instruction (branch, jump, or call)?
    pub fn is_control(&self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// Is this a conditional branch?
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instruction::Beq { .. }
                | Instruction::Bne { .. }
                | Instruction::Blez { .. }
                | Instruction::Bgtz { .. }
                | Instruction::Bltz { .. }
                | Instruction::Bgez { .. }
                | Instruction::Bc1t { .. }
                | Instruction::Bc1f { .. }
        )
    }

    /// Is this an unconditional jump, register jump, or call?
    pub fn is_jump(&self) -> bool {
        matches!(
            self,
            Instruction::J { .. }
                | Instruction::Jal { .. }
                | Instruction::Jr { .. }
                | Instruction::Jalr { .. }
        )
    }

    /// Does this instruction write `$ra`-style linkage (function call)?
    pub fn is_call(&self) -> bool {
        matches!(self, Instruction::Jal { .. } | Instruction::Jalr { .. })
    }

    /// Does this instruction use the floating-point unit?
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Instruction::AddS { .. }
                | Instruction::SubS { .. }
                | Instruction::MulS { .. }
                | Instruction::DivS { .. }
                | Instruction::MovS { .. }
                | Instruction::CEqS { .. }
                | Instruction::CLtS { .. }
                | Instruction::CLeS { .. }
                | Instruction::CvtSW { .. }
                | Instruction::CvtWS { .. }
        )
    }

    /// Does this instruction use the integer multiply/divide unit?
    pub fn is_muldiv(&self) -> bool {
        matches!(
            self,
            Instruction::Mult { .. }
                | Instruction::Multu { .. }
                | Instruction::Div { .. }
                | Instruction::Divu { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_sll_zero() {
        assert_eq!(crate::encode(Instruction::NOP), 0);
    }

    #[test]
    fn classification_is_disjoint_for_loads_and_stores() {
        let load = Instruction::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: 0,
        };
        let store = Instruction::Sw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: 0,
        };
        assert!(load.is_load() && !load.is_store());
        assert!(store.is_store() && !store.is_load());
    }

    #[test]
    fn jal_is_call_and_jump() {
        let j = Instruction::Jal { target: 0x100 };
        assert!(j.is_call() && j.is_jump() && j.is_control() && !j.is_branch());
    }

    #[test]
    fn fp_branches_are_branches_not_fp_ops() {
        let b = Instruction::Bc1t { offset: -3 };
        assert!(b.is_branch());
        assert!(!b.is_fp(), "BC1 resolves in the branch unit, not the FPU");
    }
}
