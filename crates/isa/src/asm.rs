//! A small label-aware assembler used to build executable programs.
//!
//! The synthetic benchmark generator emits whole programs through this
//! builder; tests use it to write hand-crafted kernels.

use std::error::Error;
use std::fmt;

use crate::{encode, Instruction, Program, Reg, TEXT_BASE};

/// An opaque forward-referenceable code label.
///
/// Created by [`Assembler::new_label`], bound to the current position with
/// [`Assembler::bind`], and consumed by the branch/jump helpers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced by [`Assembler::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssembleError {
    /// A label was referenced by a branch or jump but never bound.
    UnboundLabel(Label),
    /// A branch displacement did not fit in the 16-bit offset field.
    BranchOutOfRange {
        /// Instruction index of the branch site.
        site: usize,
        /// Required displacement in instructions.
        displacement: i64,
    },
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AssembleError::BranchOutOfRange { site, displacement } => write!(
                f,
                "branch at instruction {site} needs displacement {displacement}, beyond i16"
            ),
        }
    }
}

impl Error for AssembleError {}

enum Fixup {
    /// Patch a 16-bit branch offset (instructions relative to site + 1).
    Branch { site: usize, label: Label },
    /// Patch a 26-bit jump target (absolute instruction index).
    Jump { site: usize, label: Label },
}

/// Incremental builder for SR32 text sections with labels and fixups.
///
/// ```
/// use codepack_isa::{Assembler, Instruction, Reg};
///
/// let mut a = Assembler::new();
/// let top = a.new_label();
/// a.li(Reg::T0, 3);
/// a.bind(top);
/// a.push(Instruction::Addiu { rt: Reg::T0, rs: Reg::T0, imm: -1 });
/// a.bgtz(Reg::T0, top);
/// a.halt();
/// let program = a.finish("countdown").unwrap();
/// assert!(program.text_words().len() >= 5);
/// ```
#[derive(Default)]
pub struct Assembler {
    text: Vec<u32>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
    data: Vec<u8>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Has nothing been emitted yet?
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The byte address the *next* emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        TEXT_BASE + (self.text.len() as u32) * 4
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (each label is bound once).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.text.len());
    }

    /// Emits one instruction.
    pub fn push(&mut self, insn: Instruction) -> &mut Assembler {
        self.text.push(encode(insn));
        self
    }

    /// Emits a raw (possibly invalid) machine word. Used by failure-injection
    /// tests.
    pub fn push_raw(&mut self, word: u32) -> &mut Assembler {
        self.text.push(word);
        self
    }

    /// Appends bytes to the data section and returns their offset from
    /// [`crate::DATA_BASE`].
    pub fn data(&mut self, bytes: &[u8]) -> u32 {
        let off = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        off
    }

    /// Reserves `len` zeroed data bytes, returning their offset.
    pub fn data_zeroed(&mut self, len: usize) -> u32 {
        let off = self.data.len() as u32;
        self.data.resize(self.data.len() + len, 0);
        off
    }

    // --- pseudo-instructions -------------------------------------------

    /// Loads a 32-bit constant: `lui`+`ori`, or a single instruction when it
    /// fits in 16 bits.
    pub fn li(&mut self, rt: Reg, value: i32) -> &mut Assembler {
        let v = value as u32;
        if (-32768..=32767).contains(&value) {
            self.push(Instruction::Addiu {
                rt,
                rs: Reg::ZERO,
                imm: value as i16,
            })
        } else if v & 0xffff_0000 == 0 {
            self.push(Instruction::Ori {
                rt,
                rs: Reg::ZERO,
                imm: v as u16,
            })
        } else {
            self.push(Instruction::Lui {
                rt,
                imm: (v >> 16) as u16,
            });
            if v & 0xffff != 0 {
                self.push(Instruction::Ori {
                    rt,
                    rs: rt,
                    imm: v as u16,
                });
            }
            self
        }
    }

    /// Register move (`addu rd, rs, $zero`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Assembler {
        self.push(Instruction::Addu {
            rd,
            rs,
            rt: Reg::ZERO,
        })
    }

    /// Emits the SR32 halt sequence (`li $v0, 10; syscall`).
    pub fn halt(&mut self) -> &mut Assembler {
        self.li(Reg::V0, 10);
        self.push(Instruction::Syscall)
    }

    // --- label-taking control flow --------------------------------------

    /// `beq rs, rt, label`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Beq { rs, rt, offset: 0 })
    }

    /// `bne rs, rt, label`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Bne { rs, rt, offset: 0 })
    }

    /// `blez rs, label`.
    pub fn blez(&mut self, rs: Reg, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Blez { rs, offset: 0 })
    }

    /// `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: Reg, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Bgtz { rs, offset: 0 })
    }

    /// `bltz rs, label`.
    pub fn bltz(&mut self, rs: Reg, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Bltz { rs, offset: 0 })
    }

    /// `bgez rs, label`.
    pub fn bgez(&mut self, rs: Reg, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Bgez { rs, offset: 0 })
    }

    /// `bc1t label`.
    pub fn bc1t(&mut self, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Bc1t { offset: 0 })
    }

    /// `bc1f label`.
    pub fn bc1f(&mut self, label: Label) -> &mut Assembler {
        self.branch_fixup(label);
        self.push(Instruction::Bc1f { offset: 0 })
    }

    /// `j label`.
    pub fn j(&mut self, label: Label) -> &mut Assembler {
        self.fixups.push(Fixup::Jump {
            site: self.text.len(),
            label,
        });
        self.push(Instruction::J { target: 0 })
    }

    /// `jal label` (function call).
    pub fn jal(&mut self, label: Label) -> &mut Assembler {
        self.fixups.push(Fixup::Jump {
            site: self.text.len(),
            label,
        });
        self.push(Instruction::Jal { target: 0 })
    }

    fn branch_fixup(&mut self, label: Label) {
        self.fixups.push(Fixup::Branch {
            site: self.text.len(),
            label,
        });
    }

    /// Resolves all fixups and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError`] if any referenced label is unbound or a
    /// branch target is out of `i16` range.
    pub fn finish(mut self, name: impl Into<String>) -> Result<Program, AssembleError> {
        for fixup in &self.fixups {
            match *fixup {
                Fixup::Branch { site, label } => {
                    let target = self.labels[label.0].ok_or(AssembleError::UnboundLabel(label))?;
                    let disp = target as i64 - (site as i64 + 1);
                    let disp16 =
                        i16::try_from(disp).map_err(|_| AssembleError::BranchOutOfRange {
                            site,
                            displacement: disp,
                        })?;
                    self.text[site] = (self.text[site] & 0xffff_0000) | (disp16 as u16 as u32);
                }
                Fixup::Jump { site, label } => {
                    let target = self.labels[label.0].ok_or(AssembleError::UnboundLabel(label))?;
                    let index = (TEXT_BASE / 4) + target as u32;
                    self.text[site] = (self.text[site] & 0xfc00_0000) | (index & 0x03ff_ffff);
                }
            }
        }
        Ok(Program::new(name, self.text, self.data))
    }
}

impl fmt::Debug for Assembler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Assembler")
            .field("instructions", &self.text.len())
            .field("labels", &self.labels.len())
            .field("pending_fixups", &self.fixups.len())
            .field("data_bytes", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn backward_branch_offset_is_negative() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.push(Instruction::NOP);
        a.bne(Reg::T0, Reg::ZERO, top);
        let p = a.finish("t").unwrap();
        match decode(p.text_words()[1]).unwrap() {
            Instruction::Bne { offset, .. } => assert_eq!(offset, -2),
            other => panic!("expected bne, got {other}"),
        }
    }

    #[test]
    fn forward_jump_resolves_to_absolute_index() {
        let mut a = Assembler::new();
        let end = a.new_label();
        a.j(end);
        a.push(Instruction::NOP);
        a.bind(end);
        a.halt();
        let p = a.finish("t").unwrap();
        match decode(p.text_words()[0]).unwrap() {
            Instruction::J { target } => assert_eq!(target, TEXT_BASE / 4 + 2),
            other => panic!("expected j, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.j(l);
        assert!(matches!(a.finish("t"), Err(AssembleError::UnboundLabel(_))));
    }

    #[test]
    fn li_picks_minimal_sequences() {
        let mut a = Assembler::new();
        a.li(Reg::T0, 5); // addiu
        a.li(Reg::T1, -5); // addiu
        a.li(Reg::T2, 0xabcd); // ori (fits unsigned 16, not signed)
        a.li(Reg::T3, 0x12345678); // lui + ori
        a.li(Reg::T4, 0x00050000_u32 as i32); // lui only
        a.halt();
        let p = a.finish("t").unwrap();
        assert_eq!(p.text_words().len(), 1 + 1 + 1 + 2 + 1 + 2);
    }

    #[test]
    fn data_offsets_accumulate() {
        let mut a = Assembler::new();
        assert_eq!(a.data(&[1, 2, 3]), 0);
        assert_eq!(a.data_zeroed(5), 3);
        assert_eq!(a.data(&[9]), 8);
        a.halt();
        let p = a.finish("t").unwrap();
        assert_eq!(p.data_bytes().len(), 9);
        assert_eq!(p.data_bytes()[8], 9);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }
}
