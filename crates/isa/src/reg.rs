//! Integer and floating-point register newtypes.

use std::fmt;

/// One of the 32 integer registers, `$0`–`$31`.
///
/// Register 0 (`$zero`) always reads as zero; writes to it are discarded by
/// the executor. The conventional MIPS ABI names are provided as associated
/// constants and used by the disassembler.
///
/// ```
/// use codepack_isa::Reg;
/// assert_eq!(Reg::SP.index(), 29);
/// assert_eq!(Reg::new(29), Reg::SP);
/// assert_eq!(Reg::SP.to_string(), "$sp");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// Function result registers.
    pub const V0: Reg = Reg(2);
    pub const V1: Reg = Reg(3);
    /// Argument registers.
    pub const A0: Reg = Reg(4);
    pub const A1: Reg = Reg(5);
    pub const A2: Reg = Reg(6);
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries.
    pub const T0: Reg = Reg(8);
    pub const T1: Reg = Reg(9);
    pub const T2: Reg = Reg(10);
    pub const T3: Reg = Reg(11);
    pub const T4: Reg = Reg(12);
    pub const T5: Reg = Reg(13);
    pub const T6: Reg = Reg(14);
    pub const T7: Reg = Reg(15);
    /// Callee-saved registers.
    pub const S0: Reg = Reg(16);
    pub const S1: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    /// More caller-saved temporaries.
    pub const T8: Reg = Reg(24);
    pub const T9: Reg = Reg(25);
    /// Reserved for the kernel.
    pub const K0: Reg = Reg(26);
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "integer register index {index} out of range");
        Reg(index)
    }

    /// Creates a register from the low 5 bits of an encoded field.
    #[inline]
    pub(crate) fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register number, 0–31.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// The conventional ABI name, e.g. `"$sp"` for register 29.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.name())
    }
}

impl From<Reg> for u32 {
    fn from(r: Reg) -> u32 {
        u32::from(r.0)
    }
}

/// One of the 32 single-precision floating-point registers, `$f0`–`$f31`.
///
/// ```
/// use codepack_isa::FReg;
/// assert_eq!(FReg::new(12).to_string(), "$f12");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// FP function result register.
    pub const F0: FReg = FReg(0);
    /// First FP argument register.
    pub const F12: FReg = FReg(12);

    /// Creates an FP register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> FReg {
        assert!(index < 32, "fp register index {index} out of range");
        FReg(index)
    }

    #[inline]
    pub(crate) fn from_field(bits: u32) -> FReg {
        FReg((bits & 0x1f) as u8)
    }

    /// The register number, 0–31.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FReg($f{})", self.0)
    }
}

impl From<FReg> for u32 {
    fn from(r: FReg) -> u32 {
        u32::from(r.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_match_indices() {
        assert_eq!(Reg::ZERO.name(), "$zero");
        assert_eq!(Reg::RA.name(), "$ra");
        assert_eq!(Reg::new(8), Reg::T0);
        assert_eq!(Reg::new(16), Reg::S0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_index_out_of_range_panics() {
        let _ = FReg::new(40);
    }

    #[test]
    fn from_field_masks_to_five_bits() {
        assert_eq!(Reg::from_field(0xffff_ffe3), Reg::new(3));
        assert_eq!(FReg::from_field(0x25), FReg::new(5));
    }

    #[test]
    fn display_round_trips_conventions() {
        assert_eq!(Reg::GP.to_string(), "$gp");
        assert_eq!(FReg::F12.to_string(), "$f12");
        assert_eq!(format!("{:?}", Reg::SP), "Reg($sp)");
    }
}
