//! Binary decoding of SR32 instructions.

use std::error::Error;
use std::fmt;

use crate::encode::*;
use crate::{FReg, Instruction, Reg};

/// Why a word failed to decode: which field of the encoding was
/// unrecognised, or which reserved field was nonzero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The primary opcode (bits 31..26) is not assigned.
    UnknownOpcode {
        /// The 6-bit primary opcode field.
        opcode: u8,
    },
    /// A SPECIAL-opcode funct (bits 5..0) is not assigned.
    UnknownFunct {
        /// The 6-bit funct field.
        funct: u8,
    },
    /// A REGIMM rt selector (bits 20..16) is not assigned.
    UnknownRegimm {
        /// The 5-bit rt selector field.
        rt: u8,
    },
    /// A COP1 format field (bits 25..21) is not assigned.
    UnknownCop1Format {
        /// The 5-bit fmt field.
        fmt: u8,
    },
    /// A COP1 arithmetic funct is not assigned for its format.
    UnknownCop1Funct {
        /// The 5-bit fmt field.
        fmt: u8,
        /// The 6-bit funct field.
        funct: u8,
    },
    /// A COP1 branch condition selector other than bc1f/bc1t.
    UnknownCop1Branch {
        /// The 5-bit condition selector field.
        cond: u8,
    },
    /// A field the encoder always writes as zero is nonzero.
    ReservedFieldNonzero,
}

impl fmt::Display for DecodeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeErrorKind::UnknownOpcode { opcode } => {
                write!(f, "unknown primary opcode {opcode:#04x}")
            }
            DecodeErrorKind::UnknownFunct { funct } => {
                write!(f, "unknown SPECIAL funct {funct:#04x}")
            }
            DecodeErrorKind::UnknownRegimm { rt } => {
                write!(f, "unknown REGIMM selector {rt:#04x}")
            }
            DecodeErrorKind::UnknownCop1Format { fmt: format } => {
                write!(f, "unknown COP1 format {format:#04x}")
            }
            DecodeErrorKind::UnknownCop1Funct { fmt: format, funct } => {
                write!(
                    f,
                    "unknown COP1 funct {funct:#04x} for format {format:#04x}"
                )
            }
            DecodeErrorKind::UnknownCop1Branch { cond } => {
                write!(f, "unknown COP1 branch condition {cond:#04x}")
            }
            DecodeErrorKind::ReservedFieldNonzero => {
                write!(f, "nonzero reserved field")
            }
        }
    }
}

/// Error returned by [`decode`] for a word that is not a valid SR32
/// instruction.
///
/// The offending word and the reason are carried so callers (e.g. the
/// executor's illegal-instruction trap, or the static linter) can report
/// *why* the word is invalid, not just that it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeInstructionError {
    /// The word that failed to decode.
    pub word: u32,
    /// Which part of the encoding was rejected.
    pub kind: DecodeErrorKind,
}

impl fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid SR32 instruction word {:#010x}: {}",
            self.word, self.kind
        )
    }
}

impl Error for DecodeInstructionError {}

/// A decode failure bound to the virtual address it occurred at.
///
/// This is the diagnostic-grade error: [`decode_at`] attaches the address
/// so reports can name the faulting location directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Virtual address of the offending word.
    pub addr: u32,
    /// The word that failed to decode.
    pub word: u32,
    /// Which part of the encoding was rejected.
    pub kind: DecodeErrorKind,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid SR32 instruction word {:#010x} at {:#010x}: {}",
            self.word, self.addr, self.kind
        )
    }
}

impl Error for DecodeError {}

/// Decodes the word at virtual address `addr`, binding any failure to the
/// address for diagnostics.
///
/// # Errors
///
/// Returns [`DecodeError`] under exactly the conditions [`decode`] fails,
/// with the address attached.
pub fn decode_at(addr: u32, word: u32) -> Result<Instruction, DecodeError> {
    decode(word).map_err(|e| DecodeError {
        addr,
        word: e.word,
        kind: e.kind,
    })
}

#[inline]
fn rs(w: u32) -> Reg {
    Reg::from_field(w >> 21)
}
#[inline]
fn rt(w: u32) -> Reg {
    Reg::from_field(w >> 16)
}
#[inline]
fn rd(w: u32) -> Reg {
    Reg::from_field(w >> 11)
}
#[inline]
fn ft(w: u32) -> FReg {
    FReg::from_field(w >> 16)
}
#[inline]
fn fs(w: u32) -> FReg {
    FReg::from_field(w >> 11)
}
#[inline]
fn fd(w: u32) -> FReg {
    FReg::from_field(w >> 6)
}
#[inline]
fn shamt(w: u32) -> u8 {
    ((w >> 6) & 31) as u8
}
#[inline]
fn simm(w: u32) -> i16 {
    w as u16 as i16
}
#[inline]
fn uimm(w: u32) -> u16 {
    w as u16
}

/// Decodes a 32-bit machine word into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeInstructionError`] if the word does not correspond to any
/// SR32 instruction (unknown opcode, funct, or format field). Decoding is
/// strict: reserved fields must be zero where the encoder writes zero, so
/// `decode(encode(i)) == Ok(i)` and any successfully decoded word re-encodes
/// to itself.
///
/// ```
/// use codepack_isa::decode;
/// assert!(decode(0xffff_ffff).is_err());
/// assert_eq!(decode(0).unwrap(), codepack_isa::Instruction::NOP);
/// ```
pub fn decode(w: u32) -> Result<Instruction, DecodeInstructionError> {
    use Instruction::*;
    macro_rules! bail {
        ($kind:expr) => {
            return Err(DecodeInstructionError {
                word: w,
                kind: $kind,
            })
        };
    }
    let op = w >> 26;
    let insn = match op {
        OP_SPECIAL => {
            let funct = w & 0x3f;
            match funct {
                FN_SLL | FN_SRL | FN_SRA => {
                    if (w >> 21) & 31 != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    match funct {
                        FN_SLL => Sll {
                            rd: rd(w),
                            rt: rt(w),
                            shamt: shamt(w),
                        },
                        FN_SRL => Srl {
                            rd: rd(w),
                            rt: rt(w),
                            shamt: shamt(w),
                        },
                        _ => Sra {
                            rd: rd(w),
                            rt: rt(w),
                            shamt: shamt(w),
                        },
                    }
                }
                FN_SLLV | FN_SRLV | FN_SRAV => {
                    if shamt(w) != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    match funct {
                        FN_SLLV => Sllv {
                            rd: rd(w),
                            rt: rt(w),
                            rs: rs(w),
                        },
                        FN_SRLV => Srlv {
                            rd: rd(w),
                            rt: rt(w),
                            rs: rs(w),
                        },
                        _ => Srav {
                            rd: rd(w),
                            rt: rt(w),
                            rs: rs(w),
                        },
                    }
                }
                FN_JR => {
                    if (w >> 6) & 0x7fff != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    Jr { rs: rs(w) }
                }
                FN_JALR => {
                    if (w >> 16) & 31 != 0 || shamt(w) != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    Jalr {
                        rd: rd(w),
                        rs: rs(w),
                    }
                }
                FN_SYSCALL => {
                    if w >> 6 != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    Syscall
                }
                FN_BREAK => {
                    if w >> 6 != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    Break
                }
                FN_MFHI | FN_MFLO => {
                    if (w >> 16) & 0x3ff != 0 || shamt(w) != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    if funct == FN_MFHI {
                        Mfhi { rd: rd(w) }
                    } else {
                        Mflo { rd: rd(w) }
                    }
                }
                FN_MULT | FN_MULTU | FN_DIV | FN_DIVU => {
                    if (w >> 6) & 0x3ff != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    match funct {
                        FN_MULT => Mult {
                            rs: rs(w),
                            rt: rt(w),
                        },
                        FN_MULTU => Multu {
                            rs: rs(w),
                            rt: rt(w),
                        },
                        FN_DIV => Div {
                            rs: rs(w),
                            rt: rt(w),
                        },
                        _ => Divu {
                            rs: rs(w),
                            rt: rt(w),
                        },
                    }
                }
                FN_ADDU | FN_SUBU | FN_AND | FN_OR | FN_XOR | FN_NOR | FN_SLT | FN_SLTU => {
                    if shamt(w) != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    let (rd, rs, rt) = (rd(w), rs(w), rt(w));
                    match funct {
                        FN_ADDU => Addu { rd, rs, rt },
                        FN_SUBU => Subu { rd, rs, rt },
                        FN_AND => And { rd, rs, rt },
                        FN_OR => Or { rd, rs, rt },
                        FN_XOR => Xor { rd, rs, rt },
                        FN_NOR => Nor { rd, rs, rt },
                        FN_SLT => Slt { rd, rs, rt },
                        _ => Sltu { rd, rs, rt },
                    }
                }
                _ => bail!(DecodeErrorKind::UnknownFunct {
                    funct: (w & 0x3f) as u8,
                }),
            }
        }
        OP_REGIMM => match (w >> 16) & 31 {
            RT_BLTZ => Bltz {
                rs: rs(w),
                offset: simm(w),
            },
            RT_BGEZ => Bgez {
                rs: rs(w),
                offset: simm(w),
            },
            _ => bail!(DecodeErrorKind::UnknownRegimm {
                rt: ((w >> 16) & 31) as u8,
            }),
        },
        OP_J => J {
            target: w & 0x03ff_ffff,
        },
        OP_JAL => Jal {
            target: w & 0x03ff_ffff,
        },
        OP_BEQ => Beq {
            rs: rs(w),
            rt: rt(w),
            offset: simm(w),
        },
        OP_BNE => Bne {
            rs: rs(w),
            rt: rt(w),
            offset: simm(w),
        },
        OP_BLEZ | OP_BGTZ => {
            if (w >> 16) & 31 != 0 {
                bail!(DecodeErrorKind::ReservedFieldNonzero);
            }
            if op == OP_BLEZ {
                Blez {
                    rs: rs(w),
                    offset: simm(w),
                }
            } else {
                Bgtz {
                    rs: rs(w),
                    offset: simm(w),
                }
            }
        }
        OP_ADDIU => Addiu {
            rt: rt(w),
            rs: rs(w),
            imm: simm(w),
        },
        OP_SLTI => Slti {
            rt: rt(w),
            rs: rs(w),
            imm: simm(w),
        },
        OP_SLTIU => Sltiu {
            rt: rt(w),
            rs: rs(w),
            imm: simm(w),
        },
        OP_ANDI => Andi {
            rt: rt(w),
            rs: rs(w),
            imm: uimm(w),
        },
        OP_ORI => Ori {
            rt: rt(w),
            rs: rs(w),
            imm: uimm(w),
        },
        OP_XORI => Xori {
            rt: rt(w),
            rs: rs(w),
            imm: uimm(w),
        },
        OP_LUI => {
            if (w >> 21) & 31 != 0 {
                bail!(DecodeErrorKind::ReservedFieldNonzero);
            }
            Lui {
                rt: rt(w),
                imm: uimm(w),
            }
        }
        OP_COP1 => {
            let fmt = (w >> 21) & 31;
            match fmt {
                FMT_MFC1 | FMT_MTC1 => {
                    if (w >> 6) & 31 != 0 || w & 0x3f != 0 {
                        bail!(DecodeErrorKind::ReservedFieldNonzero);
                    }
                    if fmt == FMT_MTC1 {
                        Mtc1 {
                            rt: rt(w),
                            fs: fs(w),
                        }
                    } else {
                        Mfc1 {
                            rt: rt(w),
                            fs: fs(w),
                        }
                    }
                }
                FMT_BC => match (w >> 16) & 31 {
                    0 => Bc1f { offset: simm(w) },
                    1 => Bc1t { offset: simm(w) },
                    _ => bail!(DecodeErrorKind::UnknownCop1Branch {
                        cond: ((w >> 16) & 31) as u8,
                    }),
                },
                FMT_S => match w & 0x3f {
                    FN_ADD_S => AddS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_SUB_S => SubS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_MUL_S => MulS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_DIV_S => DivS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_MOV_S => {
                        if (w >> 16) & 31 != 0 {
                            bail!(DecodeErrorKind::ReservedFieldNonzero);
                        }
                        MovS {
                            fd: fd(w),
                            fs: fs(w),
                        }
                    }
                    FN_CVT_W => {
                        if (w >> 16) & 31 != 0 {
                            bail!(DecodeErrorKind::ReservedFieldNonzero);
                        }
                        CvtWS {
                            fd: fd(w),
                            fs: fs(w),
                        }
                    }
                    FN_C_EQ | FN_C_LT | FN_C_LE => {
                        if (w >> 6) & 31 != 0 {
                            bail!(DecodeErrorKind::ReservedFieldNonzero);
                        }
                        match w & 0x3f {
                            FN_C_EQ => CEqS {
                                fs: fs(w),
                                ft: ft(w),
                            },
                            FN_C_LT => CLtS {
                                fs: fs(w),
                                ft: ft(w),
                            },
                            _ => CLeS {
                                fs: fs(w),
                                ft: ft(w),
                            },
                        }
                    }
                    _ => bail!(DecodeErrorKind::UnknownCop1Funct {
                        fmt: FMT_S as u8,
                        funct: (w & 0x3f) as u8,
                    }),
                },
                FMT_W => match w & 0x3f {
                    FN_CVT_S => {
                        if (w >> 16) & 31 != 0 {
                            bail!(DecodeErrorKind::ReservedFieldNonzero);
                        }
                        CvtSW {
                            fd: fd(w),
                            fs: fs(w),
                        }
                    }
                    _ => bail!(DecodeErrorKind::UnknownCop1Funct {
                        fmt: FMT_W as u8,
                        funct: (w & 0x3f) as u8,
                    }),
                },
                _ => bail!(DecodeErrorKind::UnknownCop1Format { fmt: fmt as u8 }),
            }
        }
        OP_LB => Lb {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LH => Lh {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LW => Lw {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LBU => Lbu {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LHU => Lhu {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SB => Sb {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SH => Sh {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SW => Sw {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LWC1 => Lwc1 {
            ft: ft(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SWC1 => Swc1 {
            ft: ft(w),
            base: rs(w),
            offset: simm(w),
        },
        _ => bail!(DecodeErrorKind::UnknownOpcode { opcode: op as u8 }),
    };
    Ok(insn)
}

impl TryFrom<u32> for Instruction {
    type Error = DecodeInstructionError;

    fn try_from(word: u32) -> Result<Instruction, DecodeInstructionError> {
        decode(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn rejects_unknown_primary_opcode() {
        // opcode 0x3f is unused
        assert!(decode(0x3f << 26).is_err());
    }

    #[test]
    fn rejects_nonzero_reserved_fields() {
        // ADDU with nonzero shamt
        let w = encode(Instruction::Addu {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        }) | (1 << 6);
        assert!(decode(w).is_err());
    }

    #[test]
    fn error_reports_word() {
        let e = decode(0xffff_ffff).unwrap_err();
        assert_eq!(e.word, 0xffff_ffff);
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn decode_is_left_inverse_of_encode_for_samples() {
        use crate::FReg;
        let samples = [
            Instruction::NOP,
            Instruction::Jal { target: 0x123456 },
            Instruction::Bgez {
                rs: Reg::S3,
                offset: -128,
            },
            Instruction::CLtS {
                fs: FReg::new(4),
                ft: FReg::new(9),
            },
            Instruction::Swc1 {
                ft: FReg::new(31),
                base: Reg::SP,
                offset: -4,
            },
            Instruction::Syscall,
        ];
        for s in samples {
            assert_eq!(decode(encode(s)).unwrap(), s);
        }
    }
}
