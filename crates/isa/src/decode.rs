//! Binary decoding of SR32 instructions.

use std::error::Error;
use std::fmt;

use crate::encode::*;
use crate::{FReg, Instruction, Reg};

/// Error returned by [`decode`] for a word that is not a valid SR32
/// instruction.
///
/// The offending word is carried so callers (e.g. the executor's illegal-
/// instruction trap) can report it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeInstructionError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SR32 instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeInstructionError {}

#[inline]
fn rs(w: u32) -> Reg {
    Reg::from_field(w >> 21)
}
#[inline]
fn rt(w: u32) -> Reg {
    Reg::from_field(w >> 16)
}
#[inline]
fn rd(w: u32) -> Reg {
    Reg::from_field(w >> 11)
}
#[inline]
fn ft(w: u32) -> FReg {
    FReg::from_field(w >> 16)
}
#[inline]
fn fs(w: u32) -> FReg {
    FReg::from_field(w >> 11)
}
#[inline]
fn fd(w: u32) -> FReg {
    FReg::from_field(w >> 6)
}
#[inline]
fn shamt(w: u32) -> u8 {
    ((w >> 6) & 31) as u8
}
#[inline]
fn simm(w: u32) -> i16 {
    w as u16 as i16
}
#[inline]
fn uimm(w: u32) -> u16 {
    w as u16
}

/// Decodes a 32-bit machine word into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeInstructionError`] if the word does not correspond to any
/// SR32 instruction (unknown opcode, funct, or format field). Decoding is
/// strict: reserved fields must be zero where the encoder writes zero, so
/// `decode(encode(i)) == Ok(i)` and any successfully decoded word re-encodes
/// to itself.
///
/// ```
/// use codepack_isa::decode;
/// assert!(decode(0xffff_ffff).is_err());
/// assert_eq!(decode(0).unwrap(), codepack_isa::Instruction::NOP);
/// ```
pub fn decode(w: u32) -> Result<Instruction, DecodeInstructionError> {
    use Instruction::*;
    let err = Err(DecodeInstructionError { word: w });
    let op = w >> 26;
    let insn = match op {
        OP_SPECIAL => {
            let funct = w & 0x3f;
            match funct {
                FN_SLL | FN_SRL | FN_SRA => {
                    if (w >> 21) & 31 != 0 {
                        return err;
                    }
                    match funct {
                        FN_SLL => Sll {
                            rd: rd(w),
                            rt: rt(w),
                            shamt: shamt(w),
                        },
                        FN_SRL => Srl {
                            rd: rd(w),
                            rt: rt(w),
                            shamt: shamt(w),
                        },
                        _ => Sra {
                            rd: rd(w),
                            rt: rt(w),
                            shamt: shamt(w),
                        },
                    }
                }
                FN_SLLV | FN_SRLV | FN_SRAV => {
                    if shamt(w) != 0 {
                        return err;
                    }
                    match funct {
                        FN_SLLV => Sllv {
                            rd: rd(w),
                            rt: rt(w),
                            rs: rs(w),
                        },
                        FN_SRLV => Srlv {
                            rd: rd(w),
                            rt: rt(w),
                            rs: rs(w),
                        },
                        _ => Srav {
                            rd: rd(w),
                            rt: rt(w),
                            rs: rs(w),
                        },
                    }
                }
                FN_JR => {
                    if (w >> 6) & 0x7fff != 0 {
                        return err;
                    }
                    Jr { rs: rs(w) }
                }
                FN_JALR => {
                    if (w >> 16) & 31 != 0 || shamt(w) != 0 {
                        return err;
                    }
                    Jalr {
                        rd: rd(w),
                        rs: rs(w),
                    }
                }
                FN_SYSCALL => {
                    if w >> 6 != 0 {
                        return err;
                    }
                    Syscall
                }
                FN_BREAK => {
                    if w >> 6 != 0 {
                        return err;
                    }
                    Break
                }
                FN_MFHI | FN_MFLO => {
                    if (w >> 16) & 0x3ff != 0 || shamt(w) != 0 {
                        return err;
                    }
                    if funct == FN_MFHI {
                        Mfhi { rd: rd(w) }
                    } else {
                        Mflo { rd: rd(w) }
                    }
                }
                FN_MULT | FN_MULTU | FN_DIV | FN_DIVU => {
                    if (w >> 6) & 0x3ff != 0 {
                        return err;
                    }
                    match funct {
                        FN_MULT => Mult {
                            rs: rs(w),
                            rt: rt(w),
                        },
                        FN_MULTU => Multu {
                            rs: rs(w),
                            rt: rt(w),
                        },
                        FN_DIV => Div {
                            rs: rs(w),
                            rt: rt(w),
                        },
                        _ => Divu {
                            rs: rs(w),
                            rt: rt(w),
                        },
                    }
                }
                FN_ADDU | FN_SUBU | FN_AND | FN_OR | FN_XOR | FN_NOR | FN_SLT | FN_SLTU => {
                    if shamt(w) != 0 {
                        return err;
                    }
                    let (rd, rs, rt) = (rd(w), rs(w), rt(w));
                    match funct {
                        FN_ADDU => Addu { rd, rs, rt },
                        FN_SUBU => Subu { rd, rs, rt },
                        FN_AND => And { rd, rs, rt },
                        FN_OR => Or { rd, rs, rt },
                        FN_XOR => Xor { rd, rs, rt },
                        FN_NOR => Nor { rd, rs, rt },
                        FN_SLT => Slt { rd, rs, rt },
                        _ => Sltu { rd, rs, rt },
                    }
                }
                _ => return err,
            }
        }
        OP_REGIMM => match (w >> 16) & 31 {
            RT_BLTZ => Bltz {
                rs: rs(w),
                offset: simm(w),
            },
            RT_BGEZ => Bgez {
                rs: rs(w),
                offset: simm(w),
            },
            _ => return err,
        },
        OP_J => J {
            target: w & 0x03ff_ffff,
        },
        OP_JAL => Jal {
            target: w & 0x03ff_ffff,
        },
        OP_BEQ => Beq {
            rs: rs(w),
            rt: rt(w),
            offset: simm(w),
        },
        OP_BNE => Bne {
            rs: rs(w),
            rt: rt(w),
            offset: simm(w),
        },
        OP_BLEZ | OP_BGTZ => {
            if (w >> 16) & 31 != 0 {
                return err;
            }
            if op == OP_BLEZ {
                Blez {
                    rs: rs(w),
                    offset: simm(w),
                }
            } else {
                Bgtz {
                    rs: rs(w),
                    offset: simm(w),
                }
            }
        }
        OP_ADDIU => Addiu {
            rt: rt(w),
            rs: rs(w),
            imm: simm(w),
        },
        OP_SLTI => Slti {
            rt: rt(w),
            rs: rs(w),
            imm: simm(w),
        },
        OP_SLTIU => Sltiu {
            rt: rt(w),
            rs: rs(w),
            imm: simm(w),
        },
        OP_ANDI => Andi {
            rt: rt(w),
            rs: rs(w),
            imm: uimm(w),
        },
        OP_ORI => Ori {
            rt: rt(w),
            rs: rs(w),
            imm: uimm(w),
        },
        OP_XORI => Xori {
            rt: rt(w),
            rs: rs(w),
            imm: uimm(w),
        },
        OP_LUI => {
            if (w >> 21) & 31 != 0 {
                return err;
            }
            Lui {
                rt: rt(w),
                imm: uimm(w),
            }
        }
        OP_COP1 => {
            let fmt = (w >> 21) & 31;
            match fmt {
                FMT_MFC1 | FMT_MTC1 => {
                    if (w >> 6) & 31 != 0 || w & 0x3f != 0 {
                        return err;
                    }
                    if fmt == FMT_MTC1 {
                        Mtc1 {
                            rt: rt(w),
                            fs: fs(w),
                        }
                    } else {
                        Mfc1 {
                            rt: rt(w),
                            fs: fs(w),
                        }
                    }
                }
                FMT_BC => match (w >> 16) & 31 {
                    0 => Bc1f { offset: simm(w) },
                    1 => Bc1t { offset: simm(w) },
                    _ => return err,
                },
                FMT_S => match w & 0x3f {
                    FN_ADD_S => AddS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_SUB_S => SubS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_MUL_S => MulS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_DIV_S => DivS {
                        fd: fd(w),
                        fs: fs(w),
                        ft: ft(w),
                    },
                    FN_MOV_S => {
                        if (w >> 16) & 31 != 0 {
                            return err;
                        }
                        MovS {
                            fd: fd(w),
                            fs: fs(w),
                        }
                    }
                    FN_CVT_W => {
                        if (w >> 16) & 31 != 0 {
                            return err;
                        }
                        CvtWS {
                            fd: fd(w),
                            fs: fs(w),
                        }
                    }
                    FN_C_EQ | FN_C_LT | FN_C_LE => {
                        if (w >> 6) & 31 != 0 {
                            return err;
                        }
                        match w & 0x3f {
                            FN_C_EQ => CEqS {
                                fs: fs(w),
                                ft: ft(w),
                            },
                            FN_C_LT => CLtS {
                                fs: fs(w),
                                ft: ft(w),
                            },
                            _ => CLeS {
                                fs: fs(w),
                                ft: ft(w),
                            },
                        }
                    }
                    _ => return err,
                },
                FMT_W => match w & 0x3f {
                    FN_CVT_S => {
                        if (w >> 16) & 31 != 0 {
                            return err;
                        }
                        CvtSW {
                            fd: fd(w),
                            fs: fs(w),
                        }
                    }
                    _ => return err,
                },
                _ => return err,
            }
        }
        OP_LB => Lb {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LH => Lh {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LW => Lw {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LBU => Lbu {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LHU => Lhu {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SB => Sb {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SH => Sh {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SW => Sw {
            rt: rt(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_LWC1 => Lwc1 {
            ft: ft(w),
            base: rs(w),
            offset: simm(w),
        },
        OP_SWC1 => Swc1 {
            ft: ft(w),
            base: rs(w),
            offset: simm(w),
        },
        _ => return err,
    };
    Ok(insn)
}

impl TryFrom<u32> for Instruction {
    type Error = DecodeInstructionError;

    fn try_from(word: u32) -> Result<Instruction, DecodeInstructionError> {
        decode(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn rejects_unknown_primary_opcode() {
        // opcode 0x3f is unused
        assert!(decode(0x3f << 26).is_err());
    }

    #[test]
    fn rejects_nonzero_reserved_fields() {
        // ADDU with nonzero shamt
        let w = encode(Instruction::Addu {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        }) | (1 << 6);
        assert!(decode(w).is_err());
    }

    #[test]
    fn error_reports_word() {
        let e = decode(0xffff_ffff).unwrap_err();
        assert_eq!(e.word, 0xffff_ffff);
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn decode_is_left_inverse_of_encode_for_samples() {
        use crate::FReg;
        let samples = [
            Instruction::NOP,
            Instruction::Jal { target: 0x123456 },
            Instruction::Bgez {
                rs: Reg::S3,
                offset: -128,
            },
            Instruction::CLtS {
                fs: FReg::new(4),
                ft: FReg::new(9),
            },
            Instruction::Swc1 {
                ft: FReg::new(31),
                base: Reg::SP,
                offset: -4,
            },
            Instruction::Syscall,
        ];
        for s in samples {
            assert_eq!(decode(encode(s)).unwrap(), s);
        }
    }
}
