//! # codepack-isa — the SR32 instruction set
//!
//! SR32 is a from-scratch 32-bit RISC instruction set closely modeled on the
//! MIPS-IV encoding, playing the role of the "re-encoded 32-bit SimpleScalar
//! ISA" used by the paper (*Evaluation of a High Performance Code Compression
//! Method*, MICRO-32 1999, §4). All instructions are 32 bits wide; each splits
//! into a 16-bit high and low half-word — the symbols CodePack compresses.
//!
//! The crate provides:
//!
//! * [`Instruction`] — the decoded instruction form, with [`encode`] /
//!   [`decode`] round-tripping through raw `u32` words,
//! * [`Reg`] / [`FReg`] — integer and floating-point register newtypes,
//! * [`Program`] — a loaded binary (text + data sections, entry point),
//! * [`Assembler`] — a label-aware builder used by the synthetic benchmark
//!   generator to emit executable programs.
//!
//! ```
//! use codepack_isa::{decode, encode, Instruction, Reg};
//!
//! let insn = Instruction::Addu { rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 };
//! let word = encode(insn);
//! assert_eq!(decode(word).unwrap(), insn);
//! assert_eq!(insn.to_string(), "addu $v0, $a0, $a1");
//! ```
//!
//! [`encode`]: fn@encode
//! [`decode`]: fn@decode

#![forbid(unsafe_code)]

mod asm;
mod decode;
mod disasm;
mod encode;
mod insn;
mod parse;
mod program;
mod reg;

pub use asm::{AssembleError, Assembler, Label};
pub use decode::{decode, decode_at, DecodeError, DecodeErrorKind, DecodeInstructionError};
pub use encode::encode;
pub use insn::Instruction;
pub use parse::{parse_asm, ParseAsmError};
pub use program::{Program, DATA_BASE, STACK_BASE, TEXT_BASE};
pub use reg::{FReg, Reg};

/// Size of one SR32 instruction in bytes. Every instruction is fixed-width.
pub const INSN_BYTES: u32 = 4;
