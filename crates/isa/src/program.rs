//! Loaded program images.

use crate::INSN_BYTES;

/// Base virtual address of the text (code) section.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Base virtual address of the data section.
pub const DATA_BASE: u32 = 0x1000_0000;

/// Initial stack pointer (stack grows down).
pub const STACK_BASE: u32 = 0x7fff_f000;

/// A loaded SR32 binary: a text section of machine words, a data section of
/// bytes, and an entry point.
///
/// This plays the role of the statically linked ELF binaries the paper runs:
/// the `.text` section is what CodePack compresses (paper Table 3 reports the
/// `.text` compression ratio) and what the I-cache fetches from.
///
/// ```
/// use codepack_isa::{encode, Instruction, Program, TEXT_BASE};
///
/// let text = vec![encode(Instruction::NOP); 4];
/// let p = Program::new("demo", text, vec![0u8; 16]);
/// assert_eq!(p.entry(), TEXT_BASE);
/// assert_eq!(p.text_size_bytes(), 16);
/// assert_eq!(p.fetch_word(TEXT_BASE + 4), Some(0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    name: String,
    text: Vec<u32>,
    data: Vec<u8>,
    entry: u32,
}

impl Program {
    /// Creates a program whose entry point is the first text word.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty — a program must have at least one
    /// instruction.
    pub fn new(name: impl Into<String>, text: Vec<u32>, data: Vec<u8>) -> Program {
        assert!(!text.is_empty(), "program text must be non-empty");
        Program {
            name: name.into(),
            text,
            data,
            entry: TEXT_BASE,
        }
    }

    /// Creates a program with an explicit entry address.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty, or if `entry` is not word-aligned inside
    /// the text section.
    pub fn with_entry(
        name: impl Into<String>,
        text: Vec<u32>,
        data: Vec<u8>,
        entry: u32,
    ) -> Program {
        let p = Program::new(name, text, data);
        assert!(
            entry >= TEXT_BASE
                && entry < TEXT_BASE + p.text_size_bytes()
                && entry.is_multiple_of(INSN_BYTES),
            "entry {entry:#x} outside text section"
        );
        Program {
            entry: entry.to_owned(),
            ..p
        }
    }

    /// The program's name (used in experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry-point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The text section as machine words (what the compressor consumes).
    pub fn text_words(&self) -> &[u32] {
        &self.text
    }

    /// The data section bytes, loaded at [`DATA_BASE`].
    pub fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Size of the text section in bytes (the paper's "original size").
    pub fn text_size_bytes(&self) -> u32 {
        (self.text.len() as u32) * INSN_BYTES
    }

    /// Fetches the instruction word at virtual address `addr`, or `None` if
    /// the address is outside the text section or unaligned.
    #[inline]
    pub fn fetch_word(&self, addr: u32) -> Option<u32> {
        if addr < TEXT_BASE || !addr.is_multiple_of(INSN_BYTES) {
            return None;
        }
        self.text
            .get(((addr - TEXT_BASE) / INSN_BYTES) as usize)
            .copied()
    }

    /// Does `addr` lie inside the text section?
    #[inline]
    pub fn contains_text_addr(&self, addr: u32) -> bool {
        addr >= TEXT_BASE && addr < TEXT_BASE + self.text_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, Instruction};

    fn tiny() -> Program {
        Program::new(
            "t",
            vec![encode(Instruction::NOP), encode(Instruction::Syscall)],
            vec![],
        )
    }

    #[test]
    fn fetch_within_and_outside_text() {
        let p = tiny();
        assert!(p.fetch_word(TEXT_BASE).is_some());
        assert!(p.fetch_word(TEXT_BASE + 8).is_none());
        assert!(p.fetch_word(TEXT_BASE - 4).is_none());
        assert!(p.fetch_word(TEXT_BASE + 1).is_none(), "unaligned fetch");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_text_panics() {
        let _ = Program::new("e", vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "outside text")]
    fn bad_entry_panics() {
        let _ = Program::with_entry("e", vec![0], vec![], TEXT_BASE + 4);
    }

    #[test]
    fn entry_defaults_to_text_base() {
        assert_eq!(tiny().entry(), TEXT_BASE);
        let p = Program::with_entry("e", vec![0, 0, 0], vec![], TEXT_BASE + 8);
        assert_eq!(p.entry(), TEXT_BASE + 8);
    }
}
