//! Textual disassembly (`Display` for [`Instruction`]).

use std::fmt;

use crate::Instruction;

impl fmt::Display for Instruction {
    /// Formats in conventional MIPS assembler syntax, e.g.
    /// `addu $v0, $a0, $a1` or `lw $t0, 16($sp)`. Branch offsets are printed
    /// in instructions (not bytes) relative to PC + 4.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Sll { rd, rt, shamt }
                if rd == crate::Reg::ZERO && shamt == 0 && rt == crate::Reg::ZERO =>
            {
                write!(f, "nop")
            }
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Sllv { rd, rt, rs } => write!(f, "sllv {rd}, {rt}, {rs}"),
            Srlv { rd, rt, rs } => write!(f, "srlv {rd}, {rt}, {rs}"),
            Srav { rd, rt, rs } => write!(f, "srav {rd}, {rt}, {rs}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Mfhi { rd } => write!(f, "mfhi {rd}"),
            Mflo { rd } => write!(f, "mflo {rd}"),
            Mult { rs, rt } => write!(f, "mult {rs}, {rt}"),
            Multu { rs, rt } => write!(f, "multu {rs}, {rt}"),
            Div { rs, rt } => write!(f, "div {rs}, {rt}"),
            Divu { rs, rt } => write!(f, "divu {rs}, {rt}"),
            Addu { rd, rs, rt } => write!(f, "addu {rd}, {rs}, {rt}"),
            Subu { rd, rs, rt } => write!(f, "subu {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Syscall => write!(f, "syscall"),
            Break => write!(f, "break"),
            Beq { rs, rt, offset } => write!(f, "beq {rs}, {rt}, {offset}"),
            Bne { rs, rt, offset } => write!(f, "bne {rs}, {rt}, {offset}"),
            Blez { rs, offset } => write!(f, "blez {rs}, {offset}"),
            Bgtz { rs, offset } => write!(f, "bgtz {rs}, {offset}"),
            Bltz { rs, offset } => write!(f, "bltz {rs}, {offset}"),
            Bgez { rs, offset } => write!(f, "bgez {rs}, {offset}"),
            Addiu { rt, rs, imm } => write!(f, "addiu {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Sltiu { rt, rs, imm } => write!(f, "sltiu {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm:#x}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Lb { rt, base, offset } => write!(f, "lb {rt}, {offset}({base})"),
            Lh { rt, base, offset } => write!(f, "lh {rt}, {offset}({base})"),
            Lw { rt, base, offset } => write!(f, "lw {rt}, {offset}({base})"),
            Lbu { rt, base, offset } => write!(f, "lbu {rt}, {offset}({base})"),
            Lhu { rt, base, offset } => write!(f, "lhu {rt}, {offset}({base})"),
            Sb { rt, base, offset } => write!(f, "sb {rt}, {offset}({base})"),
            Sh { rt, base, offset } => write!(f, "sh {rt}, {offset}({base})"),
            Sw { rt, base, offset } => write!(f, "sw {rt}, {offset}({base})"),
            J { target } => write!(f, "j {:#x}", target << 2),
            Jal { target } => write!(f, "jal {:#x}", target << 2),
            AddS { fd, fs, ft } => write!(f, "add.s {fd}, {fs}, {ft}"),
            SubS { fd, fs, ft } => write!(f, "sub.s {fd}, {fs}, {ft}"),
            MulS { fd, fs, ft } => write!(f, "mul.s {fd}, {fs}, {ft}"),
            DivS { fd, fs, ft } => write!(f, "div.s {fd}, {fs}, {ft}"),
            MovS { fd, fs } => write!(f, "mov.s {fd}, {fs}"),
            CEqS { fs, ft } => write!(f, "c.eq.s {fs}, {ft}"),
            CLtS { fs, ft } => write!(f, "c.lt.s {fs}, {ft}"),
            CLeS { fs, ft } => write!(f, "c.le.s {fs}, {ft}"),
            Bc1t { offset } => write!(f, "bc1t {offset}"),
            Bc1f { offset } => write!(f, "bc1f {offset}"),
            Mtc1 { rt, fs } => write!(f, "mtc1 {rt}, {fs}"),
            Mfc1 { rt, fs } => write!(f, "mfc1 {rt}, {fs}"),
            CvtSW { fd, fs } => write!(f, "cvt.s.w {fd}, {fs}"),
            CvtWS { fd, fs } => write!(f, "cvt.w.s {fd}, {fs}"),
            Lwc1 { ft, base, offset } => write!(f, "lwc1 {ft}, {offset}({base})"),
            Swc1 { ft, base, offset } => write!(f, "swc1 {ft}, {offset}({base})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{FReg, Instruction, Reg};

    #[test]
    fn nop_prints_as_nop() {
        assert_eq!(Instruction::NOP.to_string(), "nop");
    }

    #[test]
    fn load_prints_offset_base_syntax() {
        let i = Instruction::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: -8,
        };
        assert_eq!(i.to_string(), "lw $t0, -8($sp)");
    }

    #[test]
    fn fp_ops_use_dot_s_suffix() {
        let i = Instruction::MulS {
            fd: FReg::new(2),
            fs: FReg::new(4),
            ft: FReg::new(6),
        };
        assert_eq!(i.to_string(), "mul.s $f2, $f4, $f6");
    }

    #[test]
    fn jump_prints_byte_target() {
        assert_eq!(Instruction::J { target: 0x400 }.to_string(), "j 0x1000");
    }
}
