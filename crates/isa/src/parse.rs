//! Textual assembly parsing: the inverse of the `Display` disassembler.
//!
//! [`parse_asm`] accepts exactly the syntax the disassembler emits —
//! conventional MIPS assembler mnemonics with ABI register names, branch
//! offsets in instructions, byte jump targets, and `offset(base)` memory
//! operands — so `parse_asm(&insn.to_string()) == Ok(insn)` for every
//! instruction.
//!
//! ```
//! use codepack_isa::{parse_asm, Instruction, Reg};
//!
//! let insn = parse_asm("addu $v0, $a0, $a1").unwrap();
//! assert_eq!(insn, Instruction::Addu { rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 });
//! assert_eq!(parse_asm("lw $t0, -8($sp)").unwrap().to_string(), "lw $t0, -8($sp)");
//! ```

use std::error::Error;
use std::fmt;

use crate::{FReg, Instruction, Reg};

/// Error returned by [`parse_asm`] for text that is not a valid SR32
/// assembly line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsmError {
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse assembly: {}", self.message)
    }
}

impl Error for ParseAsmError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseAsmError> {
    Err(ParseAsmError {
        message: message.into(),
    })
}

fn parse_reg(s: &str) -> Result<Reg, ParseAsmError> {
    for i in 0..32u8 {
        let r = Reg::new(i);
        if r.name() == s {
            return Ok(r);
        }
    }
    err(format!("unknown register `{s}`"))
}

fn parse_freg(s: &str) -> Result<FReg, ParseAsmError> {
    let Some(n) = s.strip_prefix("$f") else {
        return err(format!("expected FP register, got `{s}`"));
    };
    match n.parse::<u8>() {
        Ok(i) if i < 32 && !n.starts_with('+') => Ok(FReg::new(i)),
        _ => err(format!("bad FP register `{s}`")),
    }
}

/// Parses a decimal or `0x`-prefixed integer, optionally negated.
fn parse_int(s: &str) -> Result<i64, ParseAsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match magnitude {
        Ok(v) if !body.starts_with(['+', '-']) => Ok(if neg { -v } else { v }),
        _ => err(format!("bad integer `{s}`")),
    }
}

fn parse_simm(s: &str) -> Result<i16, ParseAsmError> {
    match i16::try_from(parse_int(s)?) {
        Ok(v) => Ok(v),
        Err(_) => err(format!("immediate `{s}` out of i16 range")),
    }
}

fn parse_uimm(s: &str) -> Result<u16, ParseAsmError> {
    match u16::try_from(parse_int(s)?) {
        Ok(v) => Ok(v),
        Err(_) => err(format!("immediate `{s}` out of u16 range")),
    }
}

fn parse_shamt(s: &str) -> Result<u8, ParseAsmError> {
    match parse_int(s)? {
        v @ 0..=31 => Ok(v as u8),
        _ => err(format!("shift amount `{s}` out of range 0..32")),
    }
}

/// Parses a byte jump target back into a 26-bit instruction-index target.
fn parse_target(s: &str) -> Result<u32, ParseAsmError> {
    match parse_int(s)? {
        v if (0..=((1i64 << 28) - 4)).contains(&v) && v % 4 == 0 => Ok((v >> 2) as u32),
        _ => err(format!("jump target `{s}` not a word address in range")),
    }
}

/// Parses an `offset(base)` memory operand.
fn parse_mem(s: &str) -> Result<(i16, Reg), ParseAsmError> {
    let Some((off, rest)) = s.split_once('(') else {
        return err(format!("expected offset(base), got `{s}`"));
    };
    let Some(base) = rest.strip_suffix(')') else {
        return err(format!("unterminated memory operand `{s}`"));
    };
    Ok((parse_simm(off.trim())?, parse_reg(base.trim())?))
}

/// Parses one line of SR32 assembly into an [`Instruction`].
///
/// The accepted grammar is exactly what `Display` produces: mnemonic
/// followed by comma-separated operands, ABI register names, immediates in
/// decimal or `0x` hex, branch offsets in instructions, jump targets in
/// bytes, loads/stores as `offset(base)`.
///
/// # Errors
///
/// Returns [`ParseAsmError`] naming the offending token when the line is
/// not a valid instruction.
pub fn parse_asm(line: &str) -> Result<Instruction, ParseAsmError> {
    use Instruction::*;
    let line = line.trim();
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let arity = |n: usize| -> Result<(), ParseAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(format!(
                "`{mnemonic}` takes {n} operand(s), got {}",
                ops.len()
            ))
        }
    };

    // Shape helpers over the operand list.
    let r = |i: usize| parse_reg(ops[i]);
    let fr = |i: usize| parse_freg(ops[i]);

    let insn = match mnemonic {
        "nop" => {
            arity(0)?;
            Instruction::NOP
        }
        "syscall" => {
            arity(0)?;
            Syscall
        }
        "break" => {
            arity(0)?;
            Break
        }
        "sll" | "srl" | "sra" => {
            arity(3)?;
            let (rd, rt, shamt) = (r(0)?, r(1)?, parse_shamt(ops[2])?);
            match mnemonic {
                "sll" => Sll { rd, rt, shamt },
                "srl" => Srl { rd, rt, shamt },
                _ => Sra { rd, rt, shamt },
            }
        }
        "sllv" | "srlv" | "srav" => {
            arity(3)?;
            let (rd, rt, rs) = (r(0)?, r(1)?, r(2)?);
            match mnemonic {
                "sllv" => Sllv { rd, rt, rs },
                "srlv" => Srlv { rd, rt, rs },
                _ => Srav { rd, rt, rs },
            }
        }
        "jr" => {
            arity(1)?;
            Jr { rs: r(0)? }
        }
        "jalr" => {
            arity(2)?;
            Jalr {
                rd: r(0)?,
                rs: r(1)?,
            }
        }
        "mfhi" => {
            arity(1)?;
            Mfhi { rd: r(0)? }
        }
        "mflo" => {
            arity(1)?;
            Mflo { rd: r(0)? }
        }
        "mult" | "multu" | "div" | "divu" => {
            arity(2)?;
            let (rs, rt) = (r(0)?, r(1)?);
            match mnemonic {
                "mult" => Mult { rs, rt },
                "multu" => Multu { rs, rt },
                "div" => Div { rs, rt },
                _ => Divu { rs, rt },
            }
        }
        "addu" | "subu" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" => {
            arity(3)?;
            let (rd, rs, rt) = (r(0)?, r(1)?, r(2)?);
            match mnemonic {
                "addu" => Addu { rd, rs, rt },
                "subu" => Subu { rd, rs, rt },
                "and" => And { rd, rs, rt },
                "or" => Or { rd, rs, rt },
                "xor" => Xor { rd, rs, rt },
                "nor" => Nor { rd, rs, rt },
                "slt" => Slt { rd, rs, rt },
                _ => Sltu { rd, rs, rt },
            }
        }
        "beq" | "bne" => {
            arity(3)?;
            let (rs, rt, offset) = (r(0)?, r(1)?, parse_simm(ops[2])?);
            if mnemonic == "beq" {
                Beq { rs, rt, offset }
            } else {
                Bne { rs, rt, offset }
            }
        }
        "blez" | "bgtz" | "bltz" | "bgez" => {
            arity(2)?;
            let (rs, offset) = (r(0)?, parse_simm(ops[1])?);
            match mnemonic {
                "blez" => Blez { rs, offset },
                "bgtz" => Bgtz { rs, offset },
                "bltz" => Bltz { rs, offset },
                _ => Bgez { rs, offset },
            }
        }
        "addiu" | "slti" | "sltiu" => {
            arity(3)?;
            let (rt, rs, imm) = (r(0)?, r(1)?, parse_simm(ops[2])?);
            match mnemonic {
                "addiu" => Addiu { rt, rs, imm },
                "slti" => Slti { rt, rs, imm },
                _ => Sltiu { rt, rs, imm },
            }
        }
        "andi" | "ori" | "xori" => {
            arity(3)?;
            let (rt, rs, imm) = (r(0)?, r(1)?, parse_uimm(ops[2])?);
            match mnemonic {
                "andi" => Andi { rt, rs, imm },
                "ori" => Ori { rt, rs, imm },
                _ => Xori { rt, rs, imm },
            }
        }
        "lui" => {
            arity(2)?;
            Lui {
                rt: r(0)?,
                imm: parse_uimm(ops[1])?,
            }
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" | "sb" | "sh" | "sw" => {
            arity(2)?;
            let rt = r(0)?;
            let (offset, base) = parse_mem(ops[1])?;
            match mnemonic {
                "lb" => Lb { rt, base, offset },
                "lh" => Lh { rt, base, offset },
                "lw" => Lw { rt, base, offset },
                "lbu" => Lbu { rt, base, offset },
                "lhu" => Lhu { rt, base, offset },
                "sb" => Sb { rt, base, offset },
                "sh" => Sh { rt, base, offset },
                _ => Sw { rt, base, offset },
            }
        }
        "j" | "jal" => {
            arity(1)?;
            let target = parse_target(ops[0])?;
            if mnemonic == "j" {
                J { target }
            } else {
                Jal { target }
            }
        }
        "add.s" | "sub.s" | "mul.s" | "div.s" => {
            arity(3)?;
            let (fd, fs, ft) = (fr(0)?, fr(1)?, fr(2)?);
            match mnemonic {
                "add.s" => AddS { fd, fs, ft },
                "sub.s" => SubS { fd, fs, ft },
                "mul.s" => MulS { fd, fs, ft },
                _ => DivS { fd, fs, ft },
            }
        }
        "mov.s" => {
            arity(2)?;
            MovS {
                fd: fr(0)?,
                fs: fr(1)?,
            }
        }
        "c.eq.s" | "c.lt.s" | "c.le.s" => {
            arity(2)?;
            let (fs, ft) = (fr(0)?, fr(1)?);
            match mnemonic {
                "c.eq.s" => CEqS { fs, ft },
                "c.lt.s" => CLtS { fs, ft },
                _ => CLeS { fs, ft },
            }
        }
        "bc1t" | "bc1f" => {
            arity(1)?;
            let offset = parse_simm(ops[0])?;
            if mnemonic == "bc1t" {
                Bc1t { offset }
            } else {
                Bc1f { offset }
            }
        }
        "mtc1" | "mfc1" => {
            arity(2)?;
            let (rt, fs) = (r(0)?, fr(1)?);
            if mnemonic == "mtc1" {
                Mtc1 { rt, fs }
            } else {
                Mfc1 { rt, fs }
            }
        }
        "cvt.s.w" | "cvt.w.s" => {
            arity(2)?;
            let (fd, fs) = (fr(0)?, fr(1)?);
            if mnemonic == "cvt.s.w" {
                CvtSW { fd, fs }
            } else {
                CvtWS { fd, fs }
            }
        }
        "" => return err("empty line"),
        other => return err(format!("unknown mnemonic `{other}`")),
    };
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_three_register_form() {
        assert_eq!(
            parse_asm("addu $v0, $a0, $a1").unwrap(),
            Instruction::Addu {
                rd: Reg::V0,
                rs: Reg::A0,
                rt: Reg::A1
            }
        );
    }

    #[test]
    fn parses_memory_operand() {
        assert_eq!(
            parse_asm("lw $t0, -8($sp)").unwrap(),
            Instruction::Lw {
                rt: Reg::T0,
                base: Reg::SP,
                offset: -8
            }
        );
    }

    #[test]
    fn parses_jump_byte_target() {
        assert_eq!(
            parse_asm("j 0x1000").unwrap(),
            Instruction::J { target: 0x400 }
        );
    }

    #[test]
    fn parses_fp_and_hex_immediates() {
        assert_eq!(
            parse_asm("mul.s $f2, $f4, $f6").unwrap().to_string(),
            "mul.s $f2, $f4, $f6"
        );
        assert_eq!(
            parse_asm("ori $t0, $zero, 0xbeef").unwrap(),
            Instruction::Ori {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 0xbeef
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_asm("frobnicate $t0").is_err());
        assert!(parse_asm("addu $t0, $t1").is_err());
        assert!(parse_asm("lw $t0, 8[$sp]").is_err());
        assert!(parse_asm("j 0x1001").is_err());
        assert!(parse_asm("").is_err());
        assert!(parse_asm("sll $t0, $t1, 99").is_err());
    }

    #[test]
    fn nop_round_trips() {
        assert_eq!(parse_asm("nop").unwrap(), Instruction::NOP);
    }
}
