//! Binary encoding of SR32 instructions.
//!
//! Layouts (MIPS-style):
//!
//! ```text
//! R-type: | op 6 | rs 5 | rt 5 | rd 5 | shamt 5 | funct 6 |
//! I-type: | op 6 | rs 5 | rt 5 |        imm 16            |
//! J-type: | op 6 |             target 26                  |
//! COP1  : | 0x11 | fmt 5| ft 5 | fs 5 |  fd 5   | funct 6 |
//! ```

use crate::Instruction;

// Primary opcodes.
pub(crate) const OP_SPECIAL: u32 = 0x00;
pub(crate) const OP_REGIMM: u32 = 0x01;
pub(crate) const OP_J: u32 = 0x02;
pub(crate) const OP_JAL: u32 = 0x03;
pub(crate) const OP_BEQ: u32 = 0x04;
pub(crate) const OP_BNE: u32 = 0x05;
pub(crate) const OP_BLEZ: u32 = 0x06;
pub(crate) const OP_BGTZ: u32 = 0x07;
pub(crate) const OP_ADDIU: u32 = 0x09;
pub(crate) const OP_SLTI: u32 = 0x0a;
pub(crate) const OP_SLTIU: u32 = 0x0b;
pub(crate) const OP_ANDI: u32 = 0x0c;
pub(crate) const OP_ORI: u32 = 0x0d;
pub(crate) const OP_XORI: u32 = 0x0e;
pub(crate) const OP_LUI: u32 = 0x0f;
pub(crate) const OP_COP1: u32 = 0x11;
pub(crate) const OP_LB: u32 = 0x20;
pub(crate) const OP_LH: u32 = 0x21;
pub(crate) const OP_LW: u32 = 0x23;
pub(crate) const OP_LBU: u32 = 0x24;
pub(crate) const OP_LHU: u32 = 0x25;
pub(crate) const OP_SB: u32 = 0x28;
pub(crate) const OP_SH: u32 = 0x29;
pub(crate) const OP_SW: u32 = 0x2b;
pub(crate) const OP_LWC1: u32 = 0x31;
pub(crate) const OP_SWC1: u32 = 0x39;

// SPECIAL functs.
pub(crate) const FN_SLL: u32 = 0x00;
pub(crate) const FN_SRL: u32 = 0x02;
pub(crate) const FN_SRA: u32 = 0x03;
pub(crate) const FN_SLLV: u32 = 0x04;
pub(crate) const FN_SRLV: u32 = 0x06;
pub(crate) const FN_SRAV: u32 = 0x07;
pub(crate) const FN_JR: u32 = 0x08;
pub(crate) const FN_JALR: u32 = 0x09;
pub(crate) const FN_SYSCALL: u32 = 0x0c;
pub(crate) const FN_BREAK: u32 = 0x0d;
pub(crate) const FN_MFHI: u32 = 0x10;
pub(crate) const FN_MFLO: u32 = 0x12;
pub(crate) const FN_MULT: u32 = 0x18;
pub(crate) const FN_MULTU: u32 = 0x19;
pub(crate) const FN_DIV: u32 = 0x1a;
pub(crate) const FN_DIVU: u32 = 0x1b;
pub(crate) const FN_ADDU: u32 = 0x21;
pub(crate) const FN_SUBU: u32 = 0x23;
pub(crate) const FN_AND: u32 = 0x24;
pub(crate) const FN_OR: u32 = 0x25;
pub(crate) const FN_XOR: u32 = 0x26;
pub(crate) const FN_NOR: u32 = 0x27;
pub(crate) const FN_SLT: u32 = 0x2a;
pub(crate) const FN_SLTU: u32 = 0x2b;

// REGIMM rt selectors.
pub(crate) const RT_BLTZ: u32 = 0x00;
pub(crate) const RT_BGEZ: u32 = 0x01;

// COP1 fmt fields.
pub(crate) const FMT_MFC1: u32 = 0x00;
pub(crate) const FMT_MTC1: u32 = 0x04;
pub(crate) const FMT_BC: u32 = 0x08;
pub(crate) const FMT_S: u32 = 0x10;
pub(crate) const FMT_W: u32 = 0x14;

// COP1.S functs.
pub(crate) const FN_ADD_S: u32 = 0x00;
pub(crate) const FN_SUB_S: u32 = 0x01;
pub(crate) const FN_MUL_S: u32 = 0x02;
pub(crate) const FN_DIV_S: u32 = 0x03;
pub(crate) const FN_MOV_S: u32 = 0x06;
pub(crate) const FN_CVT_S: u32 = 0x20;
pub(crate) const FN_CVT_W: u32 = 0x24;
pub(crate) const FN_C_EQ: u32 = 0x32;
pub(crate) const FN_C_LT: u32 = 0x3c;
pub(crate) const FN_C_LE: u32 = 0x3e;

#[inline]
fn r_type(rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

#[inline]
fn i_type(op: u32, rs: u32, rt: u32, imm: u16) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | u32::from(imm)
}

#[inline]
fn cop1(fmt: u32, ft: u32, fs: u32, fd: u32, funct: u32) -> u32 {
    (OP_COP1 << 26) | (fmt << 21) | (ft << 16) | (fs << 11) | (fd << 6) | funct
}

/// Encodes an instruction to its 32-bit machine word.
///
/// Encoding is total: every [`Instruction`] value has exactly one encoding,
/// and [`crate::decode`] inverts it.
///
/// ```
/// use codepack_isa::{encode, Instruction};
/// assert_eq!(encode(Instruction::NOP), 0);
/// ```
pub fn encode(insn: Instruction) -> u32 {
    use Instruction::*;
    match insn {
        Sll { rd, rt, shamt } => r_type(0, rt.into(), rd.into(), u32::from(shamt & 31), FN_SLL),
        Srl { rd, rt, shamt } => r_type(0, rt.into(), rd.into(), u32::from(shamt & 31), FN_SRL),
        Sra { rd, rt, shamt } => r_type(0, rt.into(), rd.into(), u32::from(shamt & 31), FN_SRA),
        Sllv { rd, rt, rs } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_SLLV),
        Srlv { rd, rt, rs } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_SRLV),
        Srav { rd, rt, rs } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_SRAV),
        Jr { rs } => r_type(rs.into(), 0, 0, 0, FN_JR),
        Jalr { rd, rs } => r_type(rs.into(), 0, rd.into(), 0, FN_JALR),
        Mfhi { rd } => r_type(0, 0, rd.into(), 0, FN_MFHI),
        Mflo { rd } => r_type(0, 0, rd.into(), 0, FN_MFLO),
        Mult { rs, rt } => r_type(rs.into(), rt.into(), 0, 0, FN_MULT),
        Multu { rs, rt } => r_type(rs.into(), rt.into(), 0, 0, FN_MULTU),
        Div { rs, rt } => r_type(rs.into(), rt.into(), 0, 0, FN_DIV),
        Divu { rs, rt } => r_type(rs.into(), rt.into(), 0, 0, FN_DIVU),
        Addu { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_ADDU),
        Subu { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_SUBU),
        And { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_AND),
        Or { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_OR),
        Xor { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_XOR),
        Nor { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_NOR),
        Slt { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_SLT),
        Sltu { rd, rs, rt } => r_type(rs.into(), rt.into(), rd.into(), 0, FN_SLTU),
        Syscall => FN_SYSCALL,
        Break => FN_BREAK,
        Beq { rs, rt, offset } => i_type(OP_BEQ, rs.into(), rt.into(), offset as u16),
        Bne { rs, rt, offset } => i_type(OP_BNE, rs.into(), rt.into(), offset as u16),
        Blez { rs, offset } => i_type(OP_BLEZ, rs.into(), 0, offset as u16),
        Bgtz { rs, offset } => i_type(OP_BGTZ, rs.into(), 0, offset as u16),
        Bltz { rs, offset } => i_type(OP_REGIMM, rs.into(), RT_BLTZ, offset as u16),
        Bgez { rs, offset } => i_type(OP_REGIMM, rs.into(), RT_BGEZ, offset as u16),
        Addiu { rt, rs, imm } => i_type(OP_ADDIU, rs.into(), rt.into(), imm as u16),
        Slti { rt, rs, imm } => i_type(OP_SLTI, rs.into(), rt.into(), imm as u16),
        Sltiu { rt, rs, imm } => i_type(OP_SLTIU, rs.into(), rt.into(), imm as u16),
        Andi { rt, rs, imm } => i_type(OP_ANDI, rs.into(), rt.into(), imm),
        Ori { rt, rs, imm } => i_type(OP_ORI, rs.into(), rt.into(), imm),
        Xori { rt, rs, imm } => i_type(OP_XORI, rs.into(), rt.into(), imm),
        Lui { rt, imm } => i_type(OP_LUI, 0, rt.into(), imm),
        Lb { rt, base, offset } => i_type(OP_LB, base.into(), rt.into(), offset as u16),
        Lh { rt, base, offset } => i_type(OP_LH, base.into(), rt.into(), offset as u16),
        Lw { rt, base, offset } => i_type(OP_LW, base.into(), rt.into(), offset as u16),
        Lbu { rt, base, offset } => i_type(OP_LBU, base.into(), rt.into(), offset as u16),
        Lhu { rt, base, offset } => i_type(OP_LHU, base.into(), rt.into(), offset as u16),
        Sb { rt, base, offset } => i_type(OP_SB, base.into(), rt.into(), offset as u16),
        Sh { rt, base, offset } => i_type(OP_SH, base.into(), rt.into(), offset as u16),
        Sw { rt, base, offset } => i_type(OP_SW, base.into(), rt.into(), offset as u16),
        J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
        Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
        AddS { fd, fs, ft } => cop1(FMT_S, ft.into(), fs.into(), fd.into(), FN_ADD_S),
        SubS { fd, fs, ft } => cop1(FMT_S, ft.into(), fs.into(), fd.into(), FN_SUB_S),
        MulS { fd, fs, ft } => cop1(FMT_S, ft.into(), fs.into(), fd.into(), FN_MUL_S),
        DivS { fd, fs, ft } => cop1(FMT_S, ft.into(), fs.into(), fd.into(), FN_DIV_S),
        MovS { fd, fs } => cop1(FMT_S, 0, fs.into(), fd.into(), FN_MOV_S),
        CEqS { fs, ft } => cop1(FMT_S, ft.into(), fs.into(), 0, FN_C_EQ),
        CLtS { fs, ft } => cop1(FMT_S, ft.into(), fs.into(), 0, FN_C_LT),
        CLeS { fs, ft } => cop1(FMT_S, ft.into(), fs.into(), 0, FN_C_LE),
        Bc1t { offset } => i_type(OP_COP1, FMT_BC, 1, offset as u16),
        Bc1f { offset } => i_type(OP_COP1, FMT_BC, 0, offset as u16),
        Mtc1 { rt, fs } => cop1(FMT_MTC1, rt.into(), fs.into(), 0, 0),
        Mfc1 { rt, fs } => cop1(FMT_MFC1, rt.into(), fs.into(), 0, 0),
        CvtSW { fd, fs } => cop1(FMT_W, 0, fs.into(), fd.into(), FN_CVT_S),
        CvtWS { fd, fs } => cop1(FMT_S, 0, fs.into(), fd.into(), FN_CVT_W),
        Lwc1 { ft, base, offset } => i_type(OP_LWC1, base.into(), ft.into(), offset as u16),
        Swc1 { ft, base, offset } => i_type(OP_SWC1, base.into(), ft.into(), offset as u16),
    }
}

impl From<Instruction> for u32 {
    fn from(insn: Instruction) -> u32 {
        encode(insn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn addu_field_layout() {
        let w = encode(Instruction::Addu {
            rd: Reg::V0,
            rs: Reg::A0,
            rt: Reg::A1,
        });
        assert_eq!(w >> 26, OP_SPECIAL);
        assert_eq!((w >> 21) & 31, 4); // rs = $a0
        assert_eq!((w >> 16) & 31, 5); // rt = $a1
        assert_eq!((w >> 11) & 31, 2); // rd = $v0
        assert_eq!(w & 0x3f, FN_ADDU);
    }

    #[test]
    fn negative_branch_offset_encodes_twos_complement() {
        let w = encode(Instruction::Bne {
            rs: Reg::T0,
            rt: Reg::ZERO,
            offset: -4,
        });
        assert_eq!(w & 0xffff, 0xfffc);
    }

    #[test]
    fn jump_target_masked_to_26_bits() {
        let w = encode(Instruction::J {
            target: 0xffff_ffff,
        });
        assert_eq!(w, (OP_J << 26) | 0x03ff_ffff);
    }

    #[test]
    fn lui_uses_zero_rs() {
        let w = encode(Instruction::Lui {
            rt: Reg::T0,
            imm: 0x1234,
        });
        assert_eq!((w >> 21) & 31, 0);
        assert_eq!(w & 0xffff, 0x1234);
    }
}
