//! # codepack-testkit — hermetic test & measurement kit
//!
//! The workspace's replacement for `rand`, `proptest`, and `criterion`,
//! written against `std` only so `cargo build --offline` works from a
//! cold registry cache (the tier-1 gate; see `ci.sh`).
//!
//! Three pieces:
//!
//! * [`Rng`] — SplitMix64-seeded xoshiro256++ with `gen_range`,
//!   `shuffle`, `choose`, and `weighted_choice`. Drives the synthetic
//!   benchmark generator in `codepack-synth`, so its stream is part of
//!   the experiments' reproducibility contract: **changing the generator
//!   changes every golden value**.
//! * [`forall!`](forall) + [`prop`] — property testing: N cases from a
//!   deterministic seed, counterexample shrinking for integers and
//!   vectors, failing-seed persistence to `target/testkit-regressions/`.
//! * [`mod@bench`] — micro-benchmarks: calibrated batches, median/MAD
//!   statistics, text table + JSON emission to `target/bench/*.json`.
//!
//! Environment knobs: `TESTKIT_SEED`, `TESTKIT_CASES`,
//! `TESTKIT_BENCH_FAST`, `TESTKIT_BENCH_BATCHES`.

#![forbid(unsafe_code)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{Bench, BenchResult, Throughput};
pub use prop::Gen;
pub use rng::{mix_seed, Rng, SplitMix64};
