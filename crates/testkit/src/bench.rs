//! A minimal micro-benchmark harness: warmup, batched timing, median /
//! MAD statistics, and JSON emission — the subset of `criterion` this
//! workspace needs, with no external dependencies.
//!
//! ```no_run
//! use codepack_testkit::bench::{Bench, Throughput};
//! let mut b = Bench::new("codec_micro");
//! b.with_throughput(Throughput::Elements(1000))
//!     .bench("sum/1k", || (0..1000u64).sum::<u64>());
//! b.finish(); // prints a table, writes target/bench/codec_micro.json
//! ```
//!
//! Each benchmark auto-calibrates its batch size so one batch runs for a
//! few milliseconds, warms up, then times `TESTKIT_BENCH_BATCHES`
//! (default 9) batches. The reported point estimate is the **median**
//! ns/iteration across batches; spread is the **median absolute
//! deviation** (MAD), both robust to scheduler noise. Set
//! `TESTKIT_BENCH_FAST=1` to cut times by ~10× in smoke runs.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// One benchmark's measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Identifier, conventionally `group/case`.
    pub id: String,
    /// Iterations per timed batch (after calibration).
    pub iters_per_batch: u64,
    /// Number of timed batches.
    pub batches: u64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Median absolute deviation of ns per iteration.
    pub mad_ns: f64,
    /// Fastest batch, ns per iteration.
    pub min_ns: f64,
    /// Slowest batch, ns per iteration.
    pub max_ns: f64,
    /// Work per iteration, if declared.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Human-readable throughput derived from `median_ns`, e.g.
    /// `"123.4 MiB/s"` or `"5.6 Melem/s"`.
    pub fn throughput_label(&self) -> Option<String> {
        let per_iter = match self.throughput? {
            Throughput::Bytes(b) => b as f64,
            Throughput::Elements(e) => e as f64,
        };
        let per_sec = per_iter * 1e9 / self.median_ns.max(1e-9);
        Some(match self.throughput? {
            Throughput::Bytes(_) => {
                if per_sec >= 1024.0 * 1024.0 * 1024.0 {
                    format!("{:.2} GiB/s", per_sec / (1024.0 * 1024.0 * 1024.0))
                } else {
                    format!("{:.2} MiB/s", per_sec / (1024.0 * 1024.0))
                }
            }
            Throughput::Elements(_) => {
                if per_sec >= 1e6 {
                    format!("{:.2} Melem/s", per_sec / 1e6)
                } else {
                    format!("{:.2} Kelem/s", per_sec / 1e3)
                }
            }
        })
    }
}

/// A named suite of benchmarks with uniform reporting.
pub struct Bench {
    suite: String,
    next_throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

fn fast_mode() -> bool {
    std::env::var("TESTKIT_BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn target_batch_ns() -> u64 {
    if fast_mode() {
        200_000
    } else {
        2_000_000
    }
}

fn batch_count() -> u64 {
    std::env::var("TESTKIT_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast_mode() { 5 } else { 9 })
        .max(3)
}

impl Bench {
    /// Opens a suite; `suite` names the JSON file under `target/bench/`.
    pub fn new(suite: impl Into<String>) -> Bench {
        Bench {
            suite: suite.into(),
            next_throughput: None,
            results: Vec::new(),
        }
    }

    /// Declares the work per iteration of the *next* `bench` call.
    pub fn with_throughput(&mut self, t: Throughput) -> &mut Bench {
        self.next_throughput = Some(t);
        self
    }

    /// Times `f`, recording the result under `id`. Returns the
    /// measurement for immediate inspection.
    pub fn bench<R>(&mut self, id: impl Into<String>, mut f: impl FnMut() -> R) -> &BenchResult {
        let throughput = self.next_throughput.take();

        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as u64;
            if elapsed >= target_batch_ns() || iters >= 1 << 24 {
                break;
            }
            // Aim just past the target; at least double to converge fast.
            iters = (iters * 2).max(match (iters * target_batch_ns()).checked_div(elapsed) {
                None => iters * 16,
                Some(scaled) => scaled + 1,
            });
        }

        // Warmup already happened during calibration; take timed batches.
        let batches = batch_count();
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(batches as usize);
        for _ in 0..batches {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }

        let mid = median(&mut per_iter_ns.clone());
        let mut deviations: Vec<f64> = per_iter_ns.iter().map(|v| (v - mid).abs()).collect();
        let mad = median(&mut deviations);
        let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().cloned().fold(0.0, f64::max);

        self.results.push(BenchResult {
            id: id.into(),
            iters_per_batch: iters,
            batches,
            median_ns: mid,
            mad_ns: mad,
            min_ns: min,
            max_ns: max,
            throughput,
        });
        self.results.last().expect("just pushed")
    }

    /// The measurements so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the suite as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== bench suite: {} ===", self.suite);
        let width = self
            .results
            .iter()
            .map(|r| r.id.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for r in &self.results {
            let tp = r
                .throughput_label()
                .map(|t| format!("  {t}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{:<width$}  {:>12}/iter  ± {:>9}  [{} × {} iters]{tp}",
                r.id,
                fmt_ns(r.median_ns),
                fmt_ns(r.mad_ns),
                r.batches,
                r.iters_per_batch,
            );
        }
        out
    }

    /// The suite as a JSON document (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape_json(&self.suite)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let throughput = match r.throughput {
                Some(Throughput::Bytes(b)) => format!("{{\"bytes\": {b}}}"),
                Some(Throughput::Elements(e)) => format!("{{\"elements\": {e}}}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters_per_batch\": {}, \
                 \"batches\": {}, \"throughput\": {}}}{}\n",
                escape_json(&r.id),
                r.median_ns,
                r.mad_ns,
                r.min_ns,
                r.max_ns,
                r.iters_per_batch,
                r.batches,
                throughput,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the table and writes `target/bench/<suite>.json`. Returns
    /// the JSON path when the write succeeded.
    pub fn finish(&self) -> Option<PathBuf> {
        print!("{}", self.render());
        let dir = bench_output_dir();
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}.json", self.suite));
        std::fs::write(&path, self.to_json()).ok()?;
        println!("[testkit] wrote {}", path.display());
        Some(path)
    }
}

/// `target/bench` under the workspace root (found via `Cargo.lock`).
fn bench_output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("bench");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("bench");
        }
        if !dir.pop() {
            return PathBuf::from("target").join("bench");
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_env() {
        std::env::set_var("TESTKIT_BENCH_FAST", "1");
    }

    #[test]
    fn measures_and_orders_cheap_vs_expensive() {
        fast_env();
        let mut b = Bench::new("testkit-selftest");
        let cheap = b.bench("cheap", || 1u64 + 1).median_ns;
        let expensive = b
            .bench("expensive", || {
                (0..5000u64).map(|i| i.wrapping_mul(i)).sum::<u64>()
            })
            .median_ns;
        assert!(cheap >= 0.0 && expensive > cheap, "{cheap} vs {expensive}");
    }

    #[test]
    fn stats_are_internally_consistent() {
        fast_env();
        let mut b = Bench::new("testkit-selftest-stats");
        let r = b
            .bench("spin", || std::hint::black_box(17u32).wrapping_mul(3))
            .clone();
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.mad_ns >= 0.0);
        assert!(r.batches >= 3 && r.iters_per_batch >= 1);
    }

    #[test]
    fn throughput_labels_and_json_shape() {
        fast_env();
        let mut b = Bench::new("testkit-selftest-json");
        b.with_throughput(Throughput::Bytes(4096))
            .bench("copy", || [0u8; 64]);
        b.with_throughput(Throughput::Elements(16))
            .bench("count", || 16u32);
        b.bench("plain", || ());
        let json = b.to_json();
        assert!(json.contains("\"suite\": \"testkit-selftest-json\""));
        assert!(json.contains("{\"bytes\": 4096}"));
        assert!(json.contains("{\"elements\": 16}"));
        assert!(json.contains("\"throughput\": null"));
        assert!(b.results()[0].throughput_label().unwrap().ends_with("B/s"));
        assert!(b.results()[1]
            .throughput_label()
            .unwrap()
            .ends_with("elem/s"));
        assert!(b.results()[2].throughput_label().is_none());
        assert!(b.render().contains("copy"));
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
