//! Deterministic, seedable pseudo-random numbers: SplitMix64 for seeding
//! and stream-splitting, xoshiro256++ for bulk generation.
//!
//! This is the workspace's only randomness source — the `rand` crate is
//! deliberately absent so the workspace builds offline. The generator is
//! not cryptographic; it exists to make synthetic workloads and test
//! inputs reproducible from a single `u64` seed.
//!
//! ```
//! use codepack_testkit::Rng;
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::{Bound, RangeBounds};

/// SplitMix64: a tiny, well-distributed 64-bit generator used to expand a
/// seed into xoshiro state and to derive per-case seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Advances the state and returns the next output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Mixes `seed` and `stream` into a decorrelated derived seed (used for
/// per-case and per-worker streams).
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64(seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f));
    sm.next_u64()
}

/// xoshiro256++ — the workhorse generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64 (the construction xoshiro's authors recommend).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent generator (for a sub-stream) without
    /// consuming more than one draw from `self`.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u32` over the full range.
    pub fn gen_u32(&mut self) -> u32 {
        self.next_u32()
    }

    /// Uniform `u64` over the full range.
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Unbiased uniform integer in `[0, n)` via Lemire's multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `range` (either `lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformInt, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() + 1,
            Bound::Unbounded => T::MIN_I128,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() - 1,
            Bound::Unbounded => T::MAX_I128,
        };
        assert!(lo <= hi, "empty range: {lo}..={hi}");
        let span = (hi - lo + 1) as u128;
        let draw = if span > u128::from(u64::MAX) {
            // Only reachable for 128-bit-wide spans of 64-bit types: the
            // full domain, where raw bits are already uniform.
            u128::from(self.next_u64())
        } else {
            u128::from(self.bounded_u64(span as u64))
        };
        T::from_i128(lo + draw as i128)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// Index drawn with probability proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weighted_choice needs a positive total weight");
        let mut draw = self.bounded_u64(total);
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return i;
            }
            draw -= w;
        }
        unreachable!("draw < total")
    }
}

/// Integer types `Rng::gen_range` can sample. All conversions go through
/// `i128`, which holds every value of every implementing type.
pub trait UniformInt: Copy {
    /// This type's minimum, as `i128`.
    const MIN_I128: i128;
    /// This type's maximum, as `i128`.
    const MAX_I128: i128;
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (must be in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            const MIN_I128: i128 = <$t>::MIN as i128;
            const MAX_I128: i128 = <$t>::MAX as i128;
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state seeded from SplitMix64(0) must be stable
        // forever: synthetic benchmarks are derived from this stream.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, (0..3).map(|_| again.next_u64()).collect::<Vec<_>>());
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(r.gen_range(3..4u32), 3, "singleton range");
        assert_eq!(r.gen_range(7..=7i64), 7);
    }

    #[test]
    fn full_domain_ranges_do_not_panic() {
        let mut r = Rng::seed_from_u64(2);
        let _ = r.gen_range(u64::MIN..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(1..=u32::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements virtually never fixed"
        );
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = Rng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..9000 {
            counts[r.weighted_choice(&[1, 8, 1])] += 1;
        }
        assert!(
            counts[1] > counts[0] * 4 && counts[1] > counts[2] * 4,
            "{counts:?}"
        );
        assert_eq!(
            r.weighted_choice(&[0, 7, 0]),
            1,
            "zero weights never chosen"
        );
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::seed_from_u64(6);
        let mut b = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
