//! A minimal property-testing harness: N generated cases from a
//! deterministic seed, counterexample shrinking, and failing-seed
//! persistence — the subset of `proptest` this workspace needs, with no
//! external dependencies.
//!
//! The entry point is the [`forall!`](crate::forall) macro:
//!
//! ```
//! use codepack_testkit::forall;
//! use codepack_testkit::prop::gen;
//!
//! forall!(cases = 64, (gen::ints(0u32..1000), gen::vec_of(gen::ints(0u8..10), 0..8)), |x, v| {
//!     assert!(x < 1000 && v.len() < 8);
//! });
//! ```
//!
//! On failure the harness shrinks the counterexample (integers toward the
//! range minimum, vectors toward shorter lengths), appends the failing
//! case seed to `target/testkit-regressions/<test>.seeds`, and re-runs
//! persisted seeds first on every subsequent run so regressions stay
//! fixed. Set `TESTKIT_SEED` to change the base seed and `TESTKIT_CASES`
//! to cap the case count.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Once;

use crate::rng::{mix_seed, Rng};

/// A shrinker: proposes candidate smaller variants of a failing value.
type Shrinker<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A generator: draws a value from an [`Rng`] and knows how to propose
/// smaller variants of a failing value.
pub struct Gen<T> {
    generate: Rc<dyn Fn(&mut Rng) -> T>,
    shrink: Shrinker<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Gen<T> {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a draw function, with no shrinking.
    pub fn new(f: impl Fn(&mut Rng) -> T + 'static) -> Gen<T> {
        Gen {
            generate: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attaches a shrinker proposing candidate smaller values.
    pub fn with_shrink(mut self, f: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        self.shrink = Rc::new(f);
        self
    }

    /// Draws one value.
    pub fn draw(&self, rng: &mut Rng) -> T {
        (self.generate)(rng)
    }

    /// Candidate shrinks of `value`, smallest first.
    pub fn shrinks(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Transforms generated values. Shrinking does not survive a map
    /// (the transformation is not invertible in general).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.draw(rng)))
    }

    /// Pairs two generators; each side shrinks independently.
    pub fn zip<U>(self, other: Gen<U>) -> Gen<(T, U)>
    where
        T: Clone,
        U: Clone + 'static,
    {
        let (ga, gb) = (self.clone(), other.clone());
        Gen::new(move |rng| (ga.draw(rng), gb.draw(rng))).with_shrink(move |(a, b)| {
            let mut out: Vec<(T, U)> = self
                .shrinks(a)
                .into_iter()
                .map(|sa| (sa, b.clone()))
                .collect();
            out.extend(other.shrinks(b).into_iter().map(|sb| (a.clone(), sb)));
            out
        })
    }
}

/// The built-in generators.
pub mod gen {
    use super::Gen;
    use crate::rng::{Rng, UniformInt};
    use std::ops::RangeBounds;

    /// Uniform integer in `range`, shrinking toward the range minimum.
    pub fn ints<T, R>(range: R) -> Gen<T>
    where
        T: UniformInt + PartialOrd + 'static,
        R: RangeBounds<T> + Clone + 'static,
    {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&v) => v.to_i128(),
            std::ops::Bound::Excluded(&v) => v.to_i128() + 1,
            std::ops::Bound::Unbounded => T::MIN_I128,
        };
        Gen::new(move |rng: &mut Rng| rng.gen_range(range.clone())).with_shrink(move |&v| {
            let v128 = v.to_i128();
            let mut out = Vec::new();
            if v128 != lo {
                out.push(T::from_i128(lo));
                let mid = lo + (v128 - lo) / 2;
                if mid != lo && mid != v128 {
                    out.push(T::from_i128(mid));
                }
                out.push(T::from_i128(v128 - 1));
            }
            out
        })
    }

    /// The full domain of an integer type.
    pub fn any_int<T: UniformInt + PartialOrd + 'static>() -> Gen<T> {
        ints(..)
    }

    /// Uniform `f64` in `[0, 1)`, shrinking toward 0.
    pub fn unit_f64() -> Gen<f64> {
        Gen::new(|rng: &mut Rng| rng.gen_f64()).with_shrink(|&v| {
            if v == 0.0 {
                Vec::new()
            } else {
                vec![0.0, v / 2.0]
            }
        })
    }

    /// Fair coin, shrinking toward `false`.
    pub fn bools() -> Gen<bool> {
        Gen::new(|rng: &mut Rng| rng.gen_bool(0.5)).with_shrink(|&v| {
            if v {
                vec![false]
            } else {
                Vec::new()
            }
        })
    }

    /// Always `value`.
    pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
        Gen::new(move |_| value.clone())
    }

    /// A uniformly chosen arm.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn one_of<T: 'static>(arms: Vec<Gen<T>>) -> Gen<T> {
        assert!(!arms.is_empty(), "one_of needs at least one arm");
        Gen::new(move |rng: &mut Rng| {
            let i = rng.gen_range(0..arms.len());
            arms[i].draw(rng)
        })
    }

    /// An arm chosen with probability proportional to its weight.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn weighted<T: 'static>(arms: Vec<(u64, Gen<T>)>) -> Gen<T> {
        assert!(!arms.is_empty(), "weighted needs at least one arm");
        let weights: Vec<u64> = arms.iter().map(|(w, _)| *w).collect();
        Gen::new(move |rng: &mut Rng| {
            let i = rng.weighted_choice(&weights);
            arms[i].1.draw(rng)
        })
    }

    /// A vector of `elem` draws with length uniform in `len`, shrinking by
    /// halving, dropping elements, and shrinking individual elements.
    pub fn vec_of<T, R>(elem: Gen<T>, len: R) -> Gen<Vec<T>>
    where
        T: Clone + 'static,
        R: RangeBounds<usize> + Clone + 'static,
    {
        let min_len = match len.start_bound() {
            std::ops::Bound::Included(&v) => v,
            std::ops::Bound::Excluded(&v) => v + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let elem2 = elem.clone();
        Gen::new(move |rng: &mut Rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| elem.draw(rng)).collect()
        })
        .with_shrink(move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            let n = v.len();
            if n > min_len {
                // Structurally smaller first: halves, then single removals.
                if n / 2 >= min_len {
                    out.push(v[..n / 2].to_vec());
                    out.push(v[n - n / 2..].to_vec());
                }
                out.push(v[..n - 1].to_vec());
                out.push(v[1..].to_vec());
            }
            // Then element-wise shrinks at every position (elements already
            // minimal propose no candidates, so this stays cheap).
            for i in 0..n {
                for smaller in elem2.shrinks(&v[i]).into_iter().take(2) {
                    let mut w = v.clone();
                    w[i] = smaller;
                    out.push(w);
                }
            }
            out
        })
    }
}

thread_local! {
    /// True while the harness probes shrink candidates: expected panics
    /// are swallowed by the hook installed in [`quiet_hook`].
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while the
/// current thread is probing shrink candidates and defers to the previous
/// hook otherwise.
fn quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `prop` on a clone of `value`, returning the panic message on
/// failure.
fn run_case<T: Clone, F: Fn(T)>(prop: &F, value: &T) -> Result<(), String> {
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value.clone())));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    outcome.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

/// Where failing case seeds are persisted: `target/testkit-regressions`
/// under the workspace root (located via `Cargo.lock`, since tests run
/// with the member crate as working directory).
fn regression_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("testkit-regressions");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("testkit-regressions");
        }
        if !dir.pop() {
            return PathBuf::from("target").join("testkit-regressions");
        }
    }
}

fn regression_file(test_name: &str) -> PathBuf {
    let safe: String = test_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    regression_dir().join(format!("{safe}.seeds"))
}

fn load_regression_seeds(test_name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_file(test_name)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.split('#').next())
        .filter_map(|l| u64::from_str_radix(l.trim().trim_start_matches("0x"), 16).ok())
        .collect()
}

fn persist_regression_seed(test_name: &str, seed: u64) {
    let path = regression_file(test_name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut seeds = load_regression_seeds(test_name);
    if !seeds.contains(&seed) {
        seeds.push(seed);
        let body: String = seeds
            .iter()
            .map(|s| format!("{s:#018x}  # failing case seed\n"))
            .collect();
        let _ = std::fs::write(&path, body);
    }
}

/// Base seed for a test: `TESTKIT_SEED` if set, else a fixed constant,
/// mixed with an FNV-1a hash of the test name so each test draws an
/// independent stream.
fn base_seed(test_name: &str) -> u64 {
    let env_seed = std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|v| v.trim().trim_start_matches("0x").parse::<u64>().ok())
        .unwrap_or(0xC0DE_9ACC_5EED_0001);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix_seed(env_seed, h)
}

/// Case count: the smaller of what the test asked for and `TESTKIT_CASES`
/// (if set).
fn effective_cases(requested: u32) -> u32 {
    std::env::var("TESTKIT_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map_or(requested, |cap| requested.min(cap.max(1)))
}

/// Maximum accepted shrink steps before reporting the counterexample.
const MAX_SHRINK_STEPS: usize = 512;

/// Runs `cases` random cases of `prop` over values from `generator`.
/// Prefer the [`forall!`](crate::forall) macro, which names the test
/// site automatically.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) with the minimal shrunk
/// counterexample if any case fails.
pub fn forall_impl<T, F>(test_name: &str, cases: u32, generator: Gen<T>, prop: F)
where
    T: Clone + std::fmt::Debug + 'static,
    F: Fn(T),
{
    quiet_hook();

    // Previously failing seeds run first: a fixed regression suite.
    for seed in load_regression_seeds(test_name) {
        let value = generator.draw(&mut Rng::seed_from_u64(seed));
        if let Err(msg) = run_case(&prop, &value) {
            report_failure(test_name, seed, &generator, value, msg, &prop, true);
        }
    }

    let base = base_seed(test_name);
    for case in 0..effective_cases(cases) {
        let case_seed = mix_seed(base, u64::from(case));
        let value = generator.draw(&mut Rng::seed_from_u64(case_seed));
        if let Err(msg) = run_case(&prop, &value) {
            persist_regression_seed(test_name, case_seed);
            report_failure(test_name, case_seed, &generator, value, msg, &prop, false);
        }
    }
}

fn report_failure<T, F>(
    test_name: &str,
    case_seed: u64,
    generator: &Gen<T>,
    original: T,
    original_msg: String,
    prop: &F,
    from_regression_file: bool,
) -> !
where
    T: Clone + std::fmt::Debug + 'static,
    F: Fn(T),
{
    // Greedy shrink: take the first failing candidate, repeat.
    let mut minimal = original;
    let mut message = original_msg;
    let mut steps = 0;
    'shrinking: while steps < MAX_SHRINK_STEPS {
        for candidate in generator.shrinks(&minimal) {
            if let Err(msg) = run_case(prop, &candidate) {
                minimal = candidate;
                message = msg;
                steps += 1;
                continue 'shrinking;
            }
        }
        break;
    }
    let origin = if from_regression_file {
        format!(
            "persisted seed from {}",
            regression_file(test_name).display()
        )
    } else {
        format!(
            "fresh case (seed appended to {})",
            regression_file(test_name).display()
        )
    };
    panic!(
        "[testkit] property `{test_name}` failed\n\
         case seed : {case_seed:#018x} ({origin})\n\
         assertion : {message}\n\
         shrunk    : {steps} step(s)\n\
         minimal counterexample: {minimal:?}",
    );
}

/// Runs `cases` generated inputs against a property; shrinks and persists
/// failures. Forms (one to four generators, `cases = N` optional):
///
/// ```ignore
/// forall!((gen_a), |x| { ... });
/// forall!(cases = 64, (gen_a, gen_b), |x, y| { ... });
/// ```
///
/// The body receives each drawn value **by value** (cloned per case, so
/// the shrinker can replay inputs) and signals failure by panicking
/// (`assert!`/`assert_eq!` work as-is).
#[macro_export]
macro_rules! forall {
    (($($g:expr),+ $(,)?), |$($a:pat_param),+ $(,)?| $body:block) => {
        $crate::forall!(cases = 256, ($($g),+), |$($a),+| $body)
    };
    (cases = $n:expr, ($ga:expr $(,)?), |$a:pat_param $(,)?| $body:block) => {
        $crate::prop::forall_impl(
            concat!(module_path!(), "-L", line!()),
            $n,
            $ga,
            |$a| $body,
        )
    };
    (cases = $n:expr, ($ga:expr, $gb:expr $(,)?), |$a:pat_param, $b:pat_param $(,)?| $body:block) => {
        $crate::prop::forall_impl(
            concat!(module_path!(), "-L", line!()),
            $n,
            ($ga).zip($gb),
            |($a, $b)| $body,
        )
    };
    (cases = $n:expr, ($ga:expr, $gb:expr, $gc:expr $(,)?), |$a:pat_param, $b:pat_param, $c:pat_param $(,)?| $body:block) => {
        $crate::prop::forall_impl(
            concat!(module_path!(), "-L", line!()),
            $n,
            ($ga).zip($gb).zip($gc),
            |(($a, $b), $c)| $body,
        )
    };
    (cases = $n:expr, ($ga:expr, $gb:expr, $gc:expr, $gd:expr $(,)?), |$a:pat_param, $b:pat_param, $c:pat_param, $d:pat_param $(,)?| $body:block) => {
        $crate::prop::forall_impl(
            concat!(module_path!(), "-L", line!()),
            $n,
            ($ga).zip($gb).zip($gc).zip($gd),
            |((($a, $b), $c), $d)| $body,
        )
    };
}

#[cfg(test)]
mod tests {
    use super::gen;
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        forall_impl("testkit-selftest-pass", 40, gen::ints(0u32..100), |v| {
            assert!(v < 100);
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert!(count >= 40, "all cases executed (got {count})");
    }

    #[test]
    fn failing_property_shrinks_ints_to_the_boundary() {
        let err = std::panic::catch_unwind(|| {
            forall_impl(
                "testkit-selftest-shrink-int",
                200,
                gen::ints(0u32..10_000),
                |v| {
                    assert!(v < 500, "too big: {v}");
                },
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("minimal counterexample: 500"),
            "shrinks to exactly the failing boundary, got:\n{msg}"
        );
        let _ = std::fs::remove_file(regression_file("testkit-selftest-shrink-int"));
    }

    #[test]
    fn failing_property_shrinks_vectors() {
        let name = "testkit-selftest-shrink-vec";
        let err = std::panic::catch_unwind(|| {
            forall_impl(
                name,
                300,
                gen::vec_of(gen::ints(0u32..100), 0..40),
                |v: Vec<u32>| assert!(v.len() < 10, "long vec"),
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        // Minimal failing vector has exactly 10 elements, each shrunk to 0.
        assert!(
            msg.contains("minimal counterexample: [0, 0, 0, 0, 0, 0, 0, 0, 0, 0]"),
            "{msg}"
        );
        let _ = std::fs::remove_file(regression_file(name));
    }

    #[test]
    fn failing_seed_is_persisted_and_replayed() {
        let name = "testkit-selftest-persist";
        let _ = std::fs::remove_file(regression_file(name));
        let _ = std::panic::catch_unwind(|| {
            forall_impl(name, 50, gen::ints(0u32..100), |v| {
                assert!(v < 1, "nonzero")
            });
        });
        let seeds = load_regression_seeds(name);
        assert_eq!(seeds.len(), 1, "exactly the first failing seed is recorded");
        // The persisted seed regenerates a failing value immediately.
        let err = std::panic::catch_unwind(|| {
            forall_impl(name, 0, gen::ints(0u32..100), |v| assert!(v < 1, "nonzero"));
        })
        .expect_err("persisted seed replays the failure even with 0 fresh cases");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("persisted seed"), "{msg}");
        let _ = std::fs::remove_file(regression_file(name));
    }

    #[test]
    fn macro_arities_and_composite_generators() {
        forall!(cases = 30, (gen::any_int::<u16>()), |x| {
            let _ = x;
        });
        forall!(
            cases = 30,
            (gen::ints(1u32..10), gen::bools(), gen::unit_f64()),
            |a, b, c| {
                assert!((1..10).contains(&a));
                assert!((0.0..1.0).contains(&c));
                let _ = b;
            }
        );
        let word = gen::weighted(vec![
            (4, gen::one_of(vec![gen::just(7u32), gen::just(9)])),
            (1, gen::any_int::<u32>()),
        ]);
        forall!(
            cases = 50,
            (
                word,
                gen::ints(0i16..5).zip(gen::ints(0u8..=3)),
                gen::vec_of(gen::any_int::<u8>(), 0..9)
            ),
            |w, pair, tail| {
                let _ = (w, pair, tail);
            }
        );
    }

    #[test]
    fn mapped_generators_draw_through() {
        let cfg = gen::bools()
            .zip(gen::ints(1u32..4))
            .map(|(b, n)| (b, n * 10));
        forall!(cases = 30, (cfg), |c| {
            assert!(c.1 % 10 == 0 && c.1 <= 30);
        });
    }
}
