//! Set-associative LRU caches (the simulated L1 I- and D-caches).

use std::fmt;

/// Geometry of a set-associative cache.
///
/// The paper's Table 2 configurations are provided as named constructors.
///
/// ```
/// use codepack_mem::CacheConfig;
/// let c = CacheConfig::icache_4issue();
/// assert_eq!((c.size_bytes(), c.line_bytes(), c.assoc()), (16 * 1024, 32, 2));
/// assert_eq!(c.sets(), 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u32,
    line_bytes: u32,
    assoc: u32,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `line_bytes` are powers of two,
    /// `assoc >= 1`, and the geometry divides evenly into at least one set.
    pub fn new(size_bytes: u32, line_bytes: u32, assoc: u32) -> CacheConfig {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(
            size_bytes.is_multiple_of(line_bytes * assoc) && size_bytes >= line_bytes * assoc,
            "cache geometry does not divide into sets"
        );
        let cfg = CacheConfig {
            size_bytes,
            line_bytes,
            assoc,
        };
        assert!(
            cfg.sets().is_power_of_two(),
            "set count must be a power of two for address slicing"
        );
        cfg
    }

    /// L1 I-cache of the paper's 1-issue machine: 8 KB, 32 B lines, 2-way.
    pub fn icache_1issue() -> CacheConfig {
        CacheConfig::new(8 * 1024, 32, 2)
    }

    /// L1 I-cache of the 4-issue machine: 16 KB, 32 B lines, 2-way.
    pub fn icache_4issue() -> CacheConfig {
        CacheConfig::new(16 * 1024, 32, 2)
    }

    /// L1 I-cache of the 8-issue machine: 32 KB, 32 B lines, 2-way.
    pub fn icache_8issue() -> CacheConfig {
        CacheConfig::new(32 * 1024, 32, 2)
    }

    /// L1 D-cache of the 1-issue machine: 8 KB, 16 B lines, 2-way.
    pub fn dcache_1issue() -> CacheConfig {
        CacheConfig::new(8 * 1024, 16, 2)
    }

    /// L1 D-cache of the 4-issue machine: 16 KB, 16 B lines, 2-way.
    pub fn dcache_4issue() -> CacheConfig {
        CacheConfig::new(16 * 1024, 16, 2)
    }

    /// L1 D-cache of the 8-issue machine: 32 KB, 16 B lines, 2-way.
    pub fn dcache_8issue() -> CacheConfig {
        CacheConfig::new(32 * 1024, 16, 2)
    }

    /// Returns the same geometry with a different total size (the paper's
    /// Table 10 sweeps 1 KB–64 KB).
    pub fn with_size(&self, size_bytes: u32) -> CacheConfig {
        CacheConfig::new(size_bytes, self.line_bytes, self.assoc)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Hit/miss counters for a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Misses that displaced a valid resident line (capacity/conflict
    /// misses, as opposed to cold fills of an invalid way).
    pub evictions: u64,
}

impl CacheStats {
    /// Accesses that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in [0, 1]; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Adds `other`'s counters to `self` (aggregating across runs).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.evictions += other.evictions;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses(),
            self.miss_ratio() * 100.0
        )
    }
}

#[derive(Clone, Copy)]
struct Line {
    tag: u32,
    lru: u64,
    valid: bool,
}

/// A set-associative cache with true-LRU replacement.
///
/// The cache tracks tags only: the simulator is trace-accurate (hit/miss and
/// replacement state), while instruction/data *values* come from the
/// functional model. An `access` that misses allocates the line
/// (fetch-on-miss, no way to bypass), matching SimpleScalar's `cache.c`
/// behaviour for the configurations the paper uses.
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    line_shift: u32,
    set_mask: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let total_lines = (config.sets() * config.assoc()) as usize;
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    lru: 0,
                    valid: false
                };
                total_lines
            ],
            stats: CacheStats::default(),
            tick: 0,
            line_shift: config.line_bytes().trailing_zeros(),
            set_mask: config.sets() - 1,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The line-aligned address of the line containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr & !(self.config.line_bytes() - 1)
    }

    /// Accesses `addr`; returns `true` on hit. A miss allocates the line,
    /// evicting the LRU way of its set.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.config.sets().trailing_zeros();
        let ways = self.config.assoc() as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        for line in set_lines.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: fill the invalid or least-recently-used way.
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("set has at least one way");
        if victim.valid {
            self.stats.evictions += 1;
        }
        victim.tag = tag;
        victim.lru = self.tick;
        victim.valid = true;
        false
    }

    /// Probes without updating LRU or statistics; returns `true` if resident.
    pub fn probe(&self, addr: u32) -> bool {
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.config.sets().trailing_zeros();
        let ways = self.config.assoc() as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates all lines (contents only; statistics are kept).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::new(1024, 32, 2));
        assert!(!c.access(0));
        assert!(c.access(4));
        assert!(c.access(31));
        assert!(!c.access(32));
        assert_eq!(c.stats().misses(), 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn evictions_count_only_valid_victims() {
        let mut c = Cache::new(CacheConfig::new(64, 32, 2));
        c.access(0); // cold fill
        c.access(32); // cold fill
        assert_eq!(c.stats().evictions, 0, "cold fills displace nothing");
        c.access(64); // evicts the LRU of a full set
        assert_eq!(c.stats().evictions, 1);
        let mut merged = c.stats();
        merged.merge(&c.stats());
        assert_eq!(merged.accesses, 6);
        assert_eq!(merged.evictions, 2);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        // 2 ways, 1 set of 2 lines: size = 2 lines.
        let mut c = Cache::new(CacheConfig::new(64, 32, 2));
        assert_eq!(c.config().sets(), 1);
        c.access(0); // A
        c.access(32); // B  (set full)
        c.access(0); // touch A
        c.access(64); // C evicts B (LRU)
        assert!(c.probe(0), "A stays resident");
        assert!(!c.probe(32), "B evicted");
        assert!(c.probe(64));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig::new(64, 32, 1));
        assert_eq!(c.config().sets(), 2);
        assert!(!c.access(0));
        assert!(!c.access(64), "same set, conflict");
        assert!(!c.access(0), "ping-pong");
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = Cache::new(CacheConfig::new(64, 32, 2));
        c.access(0);
        c.access(32);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(96));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn flush_invalidates_contents() {
        let mut c = Cache::new(CacheConfig::icache_1issue());
        c.access(0x40_0000);
        c.flush();
        assert!(!c.probe(0x40_0000));
    }

    #[test]
    fn paper_geometries_are_valid() {
        for cfg in [
            CacheConfig::icache_1issue(),
            CacheConfig::icache_4issue(),
            CacheConfig::icache_8issue(),
            CacheConfig::dcache_1issue(),
            CacheConfig::dcache_4issue(),
            CacheConfig::dcache_8issue(),
        ] {
            assert!(cfg.sets().is_power_of_two());
        }
    }

    #[test]
    fn table10_size_sweep_geometries() {
        let base = CacheConfig::icache_4issue();
        for kb in [1u32, 4, 16, 64] {
            let cfg = base.with_size(kb * 1024);
            assert_eq!(cfg.line_bytes(), 32);
            assert_eq!(cfg.assoc(), 2);
        }
    }

    #[test]
    fn stats_display_is_informative() {
        let mut c = Cache::new(CacheConfig::new(64, 32, 1));
        c.access(0);
        let s = c.stats().to_string();
        assert!(s.contains("1 accesses") && s.contains("1 misses"));
    }
}
