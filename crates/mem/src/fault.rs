//! Deterministic soft-error injection and memory-integrity modeling.
//!
//! Embedded parts running compressed code keep their working set in exactly
//! the structures a particle strike hurts most: a variable-length stream
//! (one flipped codeword bit misaligns the rest of the block), a packed
//! index table, and small dictionary SRAMs. This module models those
//! strikes and the protection hardware that catches them:
//!
//! * [`FaultModel`] — a zero-wall-clock fault process. Whether a given
//!   access is struck is a *pure function* of `(seed, domain, cycle,
//!   address)`, so any run is bit-reproducible at any worker count and a
//!   protected run at rate 0 is byte-identical to an unprotected one.
//! * [`IntegrityConfig`] — which checks are armed (per-block CRC-32 or
//!   interleaved parity over the compressed stream; parity over index and
//!   dictionary SRAM; parity over resident I-cache lines) and what each
//!   costs in bus bytes and checker cycles.
//! * [`FaultStats`] — the conservation ledger: every injected fault is
//!   either detected (and then recovered or trapped) or escapes silently,
//!   and `injected == recovered + trapped + silent` always holds.
//!
//! The fetch-path recovery state machine that consumes these types lives in
//! `codepack-core`; the pipeline's machine-check trap in `codepack-cpu`.

use codepack_testkit::{mix_seed, Rng};

/// The four storage domains the fault model can strike.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// Compressed instruction stream bytes in main memory.
    Stream,
    /// Index-table entries (group → byte offset).
    Index,
    /// Dictionary SRAM entries.
    Dictionary,
    /// A resident L1 I-cache line.
    IcacheLine,
}

impl FaultDomain {
    /// Stable lower-case name (used in trace events and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultDomain::Stream => "stream",
            FaultDomain::Index => "index",
            FaultDomain::Dictionary => "dict",
            FaultDomain::IcacheLine => "icache",
        }
    }

    /// Decorrelation tag mixed into the PRNG key, so the same
    /// (cycle, address) pair draws independently per domain.
    fn stream_tag(self) -> u64 {
        match self {
            FaultDomain::Stream => 0x5354_5245_414d,     // "STREAM"
            FaultDomain::Index => 0x0049_4458,           // "IDX"
            FaultDomain::Dictionary => 0x4449_4354,      // "DICT"
            FaultDomain::IcacheLine => 0x4943_4143_4845, // "ICACHE"
        }
    }
}

/// The bit flips one fault event applies. At most two bits flip — enough to
/// distinguish parity (odd flips only) from CRC (any flips) detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flips {
    /// Number of flipped bits: 1 or 2.
    pub count: u32,
    /// Bit positions within the probed word/region (only `bits[..count]`
    /// are meaningful; positions are distinct).
    pub bits: [u32; 2],
}

impl Flips {
    /// Whether parity (an odd-flip detector) catches this event.
    pub fn parity_detects(&self) -> bool {
        self.count % 2 == 1
    }
}

/// One in `DOUBLE_BIT_DENOM` fault events flips two bits instead of one —
/// the multi-bit tail that defeats parity but not CRC.
const DOUBLE_BIT_DENOM: u64 = 4;

/// Parts-per-billion denominator for [`FaultModel::ppb`].
pub const PPB_SCALE: u64 = 1_000_000_000;

/// A deterministic soft-error process.
///
/// `ppb` is the probability, in parts per billion, that a single probed
/// access is struck (`1_000_000_000` = every access faults). Rates are per
/// *access opportunity* — one draw per stream/index/dictionary read or
/// I-cache line hit — not per simulated cycle, so slower machines do not
/// see more faults for the same instruction count.
///
/// ```
/// use codepack_mem::{FaultDomain, FaultModel};
/// let m = FaultModel::new(7, 1_000_000_000); // every access faults
/// let a = m.probe(100, 0x40, FaultDomain::Stream, 64).unwrap();
/// let b = m.probe(100, 0x40, FaultDomain::Stream, 64).unwrap();
/// assert_eq!(a, b, "same key, same flips");
/// assert!(FaultModel::new(7, 0).probe(100, 0x40, FaultDomain::Stream, 64).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultModel {
    /// Root seed of the fault process.
    pub seed: u64,
    /// Strike probability per probed access, in parts per billion.
    pub ppb: u32,
}

impl FaultModel {
    /// A fault process striking with probability `ppb / 1e9` per access.
    pub fn new(seed: u64, ppb: u32) -> FaultModel {
        assert!(
            u64::from(ppb) <= PPB_SCALE,
            "fault rate {ppb} exceeds 1e9 parts per billion"
        );
        FaultModel { seed, ppb }
    }

    /// A process that never fires (rate 0).
    pub fn none() -> FaultModel {
        FaultModel { seed: 0, ppb: 0 }
    }

    /// Decides whether the access at (`cycle`, `addr`) in `domain` is
    /// struck, and if so which of its `width_bits` bits flip. Pure: the
    /// same key always returns the same answer, and a rate of 0 returns
    /// `None` without touching the PRNG.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits == 0`.
    pub fn probe(
        &self,
        cycle: u64,
        addr: u64,
        domain: FaultDomain,
        width_bits: u32,
    ) -> Option<Flips> {
        if self.ppb == 0 {
            return None;
        }
        assert!(width_bits > 0, "cannot flip bits in a zero-width region");
        let key = mix_seed(
            mix_seed(mix_seed(self.seed, domain.stream_tag()), cycle),
            addr,
        );
        let mut rng = Rng::seed_from_u64(key);
        if rng.bounded_u64(PPB_SCALE) >= u64::from(self.ppb) {
            return None;
        }
        let first = rng.bounded_u64(u64::from(width_bits)) as u32;
        let double = width_bits > 1 && rng.bounded_u64(DOUBLE_BIT_DENOM) == 0;
        if !double {
            return Some(Flips {
                count: 1,
                bits: [first, 0],
            });
        }
        // Second flip: a distinct position, chosen without rejection so the
        // draw count stays fixed.
        let second = (first + 1 + rng.bounded_u64(u64::from(width_bits) - 1) as u32) % width_bits;
        Some(Flips {
            count: 2,
            bits: [first, second],
        })
    }
}

/// Integrity check over the compressed instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamIntegrity {
    /// No stream protection; corruption is caught only if it happens to
    /// break the codec (a `DecompressError`).
    None,
    /// One interleaved parity bit per payload byte, checked beat by beat.
    /// Catches odd-bit flips; transparent to double-bit events.
    Parity,
    /// A 4-byte CRC-32 appended to each compressed block, checked after the
    /// last beat. Catches all 1- and 2-bit flips the model injects.
    Crc32,
}

impl StreamIntegrity {
    /// Stable lower-case name (used in campaign labels and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            StreamIntegrity::None => "none",
            StreamIntegrity::Parity => "parity",
            StreamIntegrity::Crc32 => "crc32",
        }
    }

    /// Extra bus bytes a protected read of `payload` bytes transfers.
    pub fn overhead_bytes(&self, payload: u32) -> u32 {
        match self {
            StreamIntegrity::None => 0,
            StreamIntegrity::Parity => payload.div_ceil(8),
            StreamIntegrity::Crc32 => 4,
        }
    }

    /// Whether this check catches a given flip pattern.
    pub fn detects(&self, flips: &Flips) -> bool {
        match self {
            StreamIntegrity::None => false,
            StreamIntegrity::Parity => flips.parity_detects(),
            StreamIntegrity::Crc32 => true,
        }
    }
}

/// Which integrity hardware is armed, and what checking costs.
///
/// Index, dictionary, and I-cache parity are modeled as widened SRAM —
/// the parity bits ride in the same physical word, so they add checker
/// cycles but no bus beats. Stream protection travels over the bus with
/// the block and does add beats (see [`StreamIntegrity::overhead_bytes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IntegrityConfig {
    /// Check over compressed stream blocks.
    pub stream: StreamIntegrity,
    /// Parity over index-table entries.
    pub index_parity: bool,
    /// Parity over dictionary SRAM entries.
    pub dict_parity: bool,
    /// Parity over resident I-cache lines.
    pub icache_parity: bool,
    /// Cycles the checker adds after the protected data arrives (CRC
    /// comparison, syndrome check). Parity is checked in-flight and pays
    /// this only when it fires a retry.
    pub check_cycles: u32,
}

impl IntegrityConfig {
    /// No protection anywhere.
    pub fn none() -> IntegrityConfig {
        IntegrityConfig {
            stream: StreamIntegrity::None,
            index_parity: false,
            dict_parity: false,
            icache_parity: false,
            check_cycles: 0,
        }
    }

    /// Parity everywhere (odd-bit detection, cheapest hardware).
    pub fn parity() -> IntegrityConfig {
        IntegrityConfig {
            stream: StreamIntegrity::Parity,
            index_parity: true,
            dict_parity: true,
            icache_parity: true,
            check_cycles: 1,
        }
    }

    /// CRC-32 over the stream plus parity over the SRAMs — the strongest
    /// configuration this model offers.
    pub fn crc32() -> IntegrityConfig {
        IntegrityConfig {
            stream: StreamIntegrity::Crc32,
            index_parity: true,
            dict_parity: true,
            icache_parity: true,
            check_cycles: 2,
        }
    }

    /// Stable lower-case name of the configuration's stream check —
    /// campaign tables key protection columns on this.
    pub fn label(&self) -> &'static str {
        self.stream.as_str()
    }
}

/// The complete soft-error configuration a simulation arms: the fault
/// process, the integrity hardware, and the recovery budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SoftErrorConfig {
    /// The fault injection process.
    pub faults: FaultModel,
    /// The armed integrity checks.
    pub integrity: IntegrityConfig,
    /// Bounded re-fetch attempts after a detection before the fetch engine
    /// gives up and raises a machine check.
    pub max_refetch: u32,
}

impl SoftErrorConfig {
    /// Faults at `ppb` with the given integrity, 3 re-fetch attempts.
    pub fn new(seed: u64, ppb: u32, integrity: IntegrityConfig) -> SoftErrorConfig {
        SoftErrorConfig {
            faults: FaultModel::new(seed, ppb),
            integrity,
            max_refetch: 3,
        }
    }

    /// Returns the config with a different re-fetch budget.
    pub fn with_max_refetch(mut self, max_refetch: u32) -> SoftErrorConfig {
        self.max_refetch = max_refetch;
        self
    }
}

/// The fault-outcome ledger. Conservation invariant (enforced by tests and
/// checked by [`FaultStats::verify`]): every injected fault is recovered,
/// trapped, or silent — `injected == recovered + trapped + silent` and
/// `detected == recovered + trapped`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events the model injected.
    pub injected: u64,
    /// Injected faults an armed check (or the codec) caught.
    pub detected: u64,
    /// Detected faults cured by re-fetch.
    pub recovered: u64,
    /// Detected faults that exhausted the re-fetch budget and raised a
    /// machine check.
    pub trapped: u64,
    /// Injected faults no check caught — silent corruption escapes.
    pub silent: u64,
    /// Re-fetch attempts issued (≥ `recovered`; retries that themselves
    /// faulted count each attempt).
    pub retries: u64,
    /// Machine-check traps raised (one per trapped miss, which may carry
    /// several trapped faults).
    pub machine_checks: u64,
}

impl FaultStats {
    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.trapped += other.trapped;
        self.silent += other.silent;
        self.retries += other.retries;
        self.machine_checks += other.machine_checks;
    }

    /// True when nothing was ever injected (the armed-but-rate-0 case).
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Checks the conservation invariant, returning the ledger for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if the counters do not conserve.
    pub fn verify(&self) -> &FaultStats {
        assert_eq!(
            self.injected,
            self.recovered + self.trapped + self.silent,
            "fault ledger does not conserve: {self:?}"
        );
        assert_eq!(
            self.detected,
            self.recovered + self.trapped,
            "detected faults must be recovered or trapped: {self:?}"
        );
        self
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), computed bitwise.
/// This is the reference formulation, not a table-driven fast path — the
/// simulator checksums a few dozen bytes per miss, and the workspace takes
/// no dependency that would provide one.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_a_pure_function_of_its_key() {
        let m = FaultModel::new(42, 500_000_000);
        for cycle in [0u64, 17, 1 << 40] {
            for addr in [0u64, 0x40_0000, u64::MAX] {
                let a = m.probe(cycle, addr, FaultDomain::Stream, 256);
                let b = m.probe(cycle, addr, FaultDomain::Stream, 256);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn rate_zero_never_fires_and_rate_full_always_fires() {
        let off = FaultModel::new(9, 0);
        let on = FaultModel::new(9, PPB_SCALE as u32);
        for i in 0..200u64 {
            assert!(off.probe(i, i * 8, FaultDomain::Index, 32).is_none());
            let f = on.probe(i, i * 8, FaultDomain::Index, 32).unwrap();
            assert!((1..=2).contains(&f.count));
            assert!(f.bits[..f.count as usize].iter().all(|&b| b < 32));
            if f.count == 2 {
                assert_ne!(f.bits[0], f.bits[1], "double flips hit distinct bits");
            }
        }
    }

    #[test]
    fn domains_draw_independent_streams() {
        let m = FaultModel::new(3, PPB_SCALE as u32);
        let a = m.probe(5, 0x100, FaultDomain::Stream, 512).unwrap();
        let b = m.probe(5, 0x100, FaultDomain::Dictionary, 512).unwrap();
        // Same key apart from the domain tag; identical flips would mean
        // the tag is not mixed in.
        assert_ne!(a, b);
    }

    #[test]
    fn observed_rate_tracks_ppb() {
        // 10% rate over 10k probes: expect ~1000 hits, loosely bounded.
        let m = FaultModel::new(11, 100_000_000);
        let hits = (0..10_000u64)
            .filter(|&i| {
                m.probe(i, 0x40_0000 + i * 4, FaultDomain::Stream, 64)
                    .is_some()
            })
            .count();
        assert!((800..1200).contains(&hits), "10% rate gave {hits}/10000");
    }

    #[test]
    fn multi_bit_flips_occur_and_defeat_parity() {
        let m = FaultModel::new(13, PPB_SCALE as u32);
        let doubles = (0..1000u64)
            .filter_map(|i| m.probe(i, i, FaultDomain::Stream, 128))
            .filter(|f| f.count == 2)
            .count();
        // 1-in-4 nominal; loose bounds.
        assert!((150..350).contains(&doubles), "got {doubles}/1000 doubles");
        let double = Flips {
            count: 2,
            bits: [3, 9],
        };
        let single = Flips {
            count: 1,
            bits: [3, 0],
        };
        assert!(!StreamIntegrity::Parity.detects(&double));
        assert!(StreamIntegrity::Parity.detects(&single));
        assert!(StreamIntegrity::Crc32.detects(&double));
        assert!(!StreamIntegrity::None.detects(&single));
    }

    #[test]
    fn integrity_overheads_match_the_modeled_hardware() {
        assert_eq!(StreamIntegrity::None.overhead_bytes(40), 0);
        assert_eq!(StreamIntegrity::Parity.overhead_bytes(40), 5);
        assert_eq!(StreamIntegrity::Parity.overhead_bytes(1), 1);
        assert_eq!(StreamIntegrity::Crc32.overhead_bytes(40), 4);
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // Any single flipped bit changes the CRC.
        let base = crc32(b"codepack");
        let mut corrupt = *b"codepack";
        corrupt[3] ^= 0x10;
        assert_ne!(crc32(&corrupt), base);
    }

    #[test]
    fn ledger_conservation_is_enforced() {
        let mut s = FaultStats {
            injected: 5,
            detected: 3,
            recovered: 2,
            trapped: 1,
            silent: 2,
            retries: 4,
            machine_checks: 1,
        };
        s.verify();
        let other = s;
        s.merge(&other);
        s.verify();
        assert_eq!(s.injected, 10);
        assert!(FaultStats::default().is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not conserve")]
    fn broken_ledger_panics() {
        FaultStats {
            injected: 2,
            ..FaultStats::default()
        }
        .verify();
    }

    #[test]
    #[should_panic(expected = "exceeds 1e9")]
    fn over_unity_rate_is_rejected() {
        let _ = FaultModel::new(0, u32::MAX);
    }
}
