//! # codepack-mem — memory-system substrates for the CodePack evaluation
//!
//! The paper's experiments hinge on the L1-miss path: how long main memory
//! takes to return native or compressed instructions under different bus
//! widths and latencies, and how often caches miss. This crate provides those
//! substrates:
//!
//! * [`MemoryTiming`] — the paper's main-memory model (first access 10
//!   cycles, successive accesses 2 cycles, 64-bit bus by default; Table 2),
//!   with burst reads and critical-word-first fills,
//! * [`Cache`] / [`CacheConfig`] — set-associative LRU caches used for the
//!   L1 I- and D-caches,
//! * [`FullyAssociativeCache`] — the fully-associative cache used for the
//!   decompressor's index cache (paper §5.3, Table 6),
//! * [`SparseMemory`] — a paged functional memory backing the executor's
//!   data space,
//! * [`FaultModel`] / [`IntegrityConfig`] / [`FaultStats`] — the
//!   deterministic soft-error process, the armed integrity checks with
//!   their modeled costs, and the injected/detected/recovered/silent
//!   conservation ledger (see [`fault`]'s module docs).
//!
//! ```
//! use codepack_mem::{Cache, CacheConfig, MemoryTiming};
//!
//! // The paper's 4-issue L1 I-cache: 16 KB, 32 B lines, 2-way LRU.
//! let mut icache = Cache::new(CacheConfig::new(16 * 1024, 32, 2));
//! assert!(!icache.access(0x40_0000)); // cold miss
//! assert!(icache.access(0x40_0010));  // same line: hit
//!
//! // Native line fill, 32 B over a 64-bit bus: 10 + 3*2 = 16 cycles.
//! let t = MemoryTiming::default();
//! assert_eq!(t.burst_read_cycles(32), 16);
//! ```

#![forbid(unsafe_code)]

mod cache;
pub mod fault;
mod fully_assoc;
mod sparse;
mod timing;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use fault::{
    crc32, FaultDomain, FaultModel, FaultStats, Flips, IntegrityConfig, SoftErrorConfig,
    StreamIntegrity, PPB_SCALE,
};
pub use fully_assoc::FullyAssociativeCache;
pub use sparse::SparseMemory;
pub use timing::{LineFill, MemoryTiming};
