//! A small fully-associative LRU cache keyed by block number.
//!
//! The CodePack decompressor's index cache is fully associative
//! (paper §5.3: "All index caches are fully-associative"), organised as
//! `lines × entries_per_line`: each line holds several consecutive index
//! entries so a single fill captures spatial locality in the index table.

use crate::CacheStats;

/// Fully-associative LRU cache over `u32` keys grouped into lines.
///
/// A key `k` maps to line-block `k / entries_per_line`; a hit on any key in a
/// resident block hits the whole line. This models the paper's Table 6
/// organisations (1–64 lines × 1–8 index entries per line).
///
/// ```
/// use codepack_mem::FullyAssociativeCache;
/// let mut ic = FullyAssociativeCache::new(2, 4);
/// assert!(!ic.access(0)); // cold
/// assert!(ic.access(3));  // same 4-entry line
/// assert!(!ic.access(4)); // next line
/// ```
#[derive(Clone, Debug)]
pub struct FullyAssociativeCache {
    blocks: Vec<(u32, u64)>, // (block id, last-use tick)
    lines: usize,
    entries_per_line: u32,
    tick: u64,
    stats: CacheStats,
}

impl FullyAssociativeCache {
    /// Creates a cache of `lines` lines, each covering `entries_per_line`
    /// consecutive keys.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(lines: usize, entries_per_line: u32) -> FullyAssociativeCache {
        assert!(lines > 0, "cache must have at least one line");
        assert!(entries_per_line > 0, "line must hold at least one entry");
        FullyAssociativeCache {
            blocks: Vec::with_capacity(lines),
            lines,
            entries_per_line,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Entries covered by each line.
    pub fn entries_per_line(&self) -> u32 {
        self.entries_per_line
    }

    /// Accesses `key`; returns `true` on hit. A miss fills the containing
    /// line, evicting the LRU line when full.
    pub fn access(&mut self, key: u32) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let block = key / self.entries_per_line;
        if let Some(entry) = self.blocks.iter_mut().find(|(b, _)| *b == block) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        if self.blocks.len() == self.lines {
            let victim = self
                .blocks
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("cache is non-empty when full");
            self.blocks.swap_remove(victim);
        }
        self.blocks.push((block, self.tick));
        false
    }

    /// Probes without changing state.
    pub fn contains(&self, key: u32) -> bool {
        let block = key / self.entries_per_line;
        self.blocks.iter().any(|(b, _)| *b == block)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines.
    pub fn flush(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_grouping_hits_within_line() {
        let mut c = FullyAssociativeCache::new(1, 4);
        assert!(!c.access(8));
        for k in 8..12 {
            assert!(c.access(k), "key {k} shares the line");
        }
        assert!(!c.access(12));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = FullyAssociativeCache::new(2, 1);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn stats_track_hit_ratio() {
        let mut c = FullyAssociativeCache::new(4, 1);
        for k in [0, 0, 0, 1] {
            c.access(k);
        }
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut c = FullyAssociativeCache::new(2, 2);
        c.access(0);
        c.flush();
        assert!(!c.contains(0));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_panics() {
        let _ = FullyAssociativeCache::new(0, 4);
    }
}
