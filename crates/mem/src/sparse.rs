//! Paged sparse functional memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A byte-addressable sparse memory backed by 4 KiB pages allocated on first
/// touch. Unwritten bytes read as zero, like freshly mapped pages.
///
/// This is the *functional* data memory of the simulated machine; timing is
/// handled separately by the cache models and [`crate::MemoryTiming`].
///
/// Multi-byte accesses use little-endian byte order and may span pages.
///
/// ```
/// use codepack_mem::SparseMemory;
/// let mut m = SparseMemory::new();
/// m.write_u32(0x1000_0000, 0xdead_beef);
/// assert_eq!(m.read_u32(0x1000_0000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x1000_0000), 0xef);
/// assert_eq!(m.read_u32(0x7fff_0000), 0, "untouched memory reads zero");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SparseMemory {
    pages: HashMap<u32, Box<[u8; PAGE_BYTES]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Number of pages that have been touched by a write.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_BYTES - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
        page[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Reads a little-endian 16-bit value.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from(self.read_u8(addr)) | (u16::from(self.read_u8(addr.wrapping_add(1))) << 8)
    }

    /// Writes a little-endian 16-bit value.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.write_u8(addr, value as u8);
        self.write_u8(addr.wrapping_add(1), (value >> 8) as u8);
    }

    /// Reads a little-endian 32-bit value.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path: access within one page.
        let offset = (addr as usize) & (PAGE_BYTES - 1);
        if offset + 4 <= PAGE_BYTES {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                return u32::from_le_bytes(page[offset..offset + 4].try_into().expect("4 bytes"));
            }
            return 0;
        }
        u32::from(self.read_u16(addr)) | (u32::from(self.read_u16(addr.wrapping_add(2))) << 16)
    }

    /// Writes a little-endian 32-bit value.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let offset = (addr as usize) & (PAGE_BYTES - 1);
        if offset + 4 <= PAGE_BYTES {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write_u16(addr, value as u16);
        self.write_u16(addr.wrapping_add(2), (value >> 16) as u16);
    }

    /// Bulk-loads `bytes` starting at `addr` (used by the program loader).
    pub fn load(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u32(0xffff_fffc), 0);
        assert_eq!(m.resident_pages(), 0, "reads never allocate");
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
        assert_eq!(m.read_u16(0x102), 0x0403);
    }

    #[test]
    fn cross_page_word_access() {
        let mut m = SparseMemory::new();
        let addr = (1 << PAGE_SHIFT) - 2;
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_load_round_trips() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load(0x2000_0000, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(0x2000_0000 + i as u32), b);
        }
    }

    #[test]
    fn wrapping_address_arithmetic() {
        let mut m = SparseMemory::new();
        m.write_u16(0xffff_ffff, 0xbeef);
        assert_eq!(m.read_u8(0xffff_ffff), 0xef);
        assert_eq!(m.read_u8(0x0000_0000), 0xbe);
    }
}
