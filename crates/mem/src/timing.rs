//! Main-memory timing: latency, transfer rate, bus width, bursts.

/// Timing model of main memory, as in the paper's Table 2:
/// "memory latency: 10 cycle latency, 2 cycle rate; memory width: 64 bits".
///
/// A *burst read* of `n` bytes completes its first bus beat
/// `first_access_cycles` after issue and one further beat every
/// `next_access_cycles` thereafter; each beat carries `bus_bytes` bytes.
///
/// The experiment sweeps (Tables 11 and 12) vary `bus_bytes` and scale both
/// latency figures.
///
/// ```
/// use codepack_mem::MemoryTiming;
/// let m = MemoryTiming::default();
/// assert_eq!(m.bus_bits(), 64);
/// // 4 beats for a 32-byte line: 10, 12, 14, 16.
/// assert_eq!(m.beat_completion_cycles(32).collect::<Vec<_>>(), vec![10, 12, 14, 16]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemoryTiming {
    first_access_cycles: u32,
    next_access_cycles: u32,
    bus_bytes: u32,
}

impl Default for MemoryTiming {
    /// The paper's baseline: 10-cycle first access, 2-cycle rate, 64-bit bus.
    fn default() -> MemoryTiming {
        MemoryTiming::new(10, 2, 8)
    }
}

/// Timing of one native cache-line fill with critical-word-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineFill {
    /// Cycle (from miss) at which the requested word is available.
    pub critical_word_ready: u64,
    /// Cycle at which the full line has arrived.
    pub fill_complete: u64,
}

impl MemoryTiming {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `bus_bytes` is not a power of two.
    pub fn new(first_access_cycles: u32, next_access_cycles: u32, bus_bytes: u32) -> MemoryTiming {
        assert!(
            first_access_cycles > 0,
            "first access latency must be positive"
        );
        assert!(next_access_cycles > 0, "access rate must be positive");
        assert!(
            bus_bytes.is_power_of_two() && bus_bytes >= 1,
            "bus width must be a power of two bytes"
        );
        MemoryTiming {
            first_access_cycles,
            next_access_cycles,
            bus_bytes,
        }
    }

    /// Cycles until the first beat of a read returns.
    pub fn first_access_cycles(&self) -> u32 {
        self.first_access_cycles
    }

    /// Cycles between successive beats of a burst.
    pub fn next_access_cycles(&self) -> u32 {
        self.next_access_cycles
    }

    /// Bus width in bytes.
    pub fn bus_bytes(&self) -> u32 {
        self.bus_bytes
    }

    /// Bus width in bits (as the paper's Table 11 reports it).
    pub fn bus_bits(&self) -> u32 {
        self.bus_bytes * 8
    }

    /// Returns a model with the same rate/width but a different bus width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a whole, power-of-two number of bytes —
    /// both conditions are checked here, up front, so a caller passing
    /// e.g. 24 bits gets a message about the bus width rather than an
    /// unrelated assertion from deep inside [`MemoryTiming::new`].
    pub fn with_bus_bits(&self, bits: u32) -> MemoryTiming {
        assert!(bits.is_multiple_of(8), "bus width must be whole bytes");
        assert!(
            (bits / 8).is_power_of_two(),
            "bus width must be a power of two bytes (got {bits} bits = {} bytes)",
            bits / 8
        );
        MemoryTiming::new(self.first_access_cycles, self.next_access_cycles, bits / 8)
    }

    /// Returns a model with both latency figures scaled by `factor`
    /// (the paper's Table 12 uses 0.5×–8×). Results are rounded to the
    /// nearest cycle and clamped to at least 1.
    pub fn scaled_latency(&self, factor: f64) -> MemoryTiming {
        assert!(factor > 0.0, "latency scale must be positive");
        let scale = |c: u32| (((f64::from(c)) * factor).round() as u32).max(1);
        MemoryTiming::new(
            scale(self.first_access_cycles),
            scale(self.next_access_cycles),
            self.bus_bytes,
        )
    }

    /// Number of bus beats needed to transfer `bytes`.
    pub fn beats_for(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.bus_bytes).max(1)
    }

    /// Total cycles for a burst read of `bytes` (zero bytes still costs one
    /// beat — the request must round-trip to memory).
    pub fn burst_read_cycles(&self, bytes: u32) -> u64 {
        let beats = self.beats_for(bytes);
        u64::from(self.first_access_cycles)
            + u64::from(beats - 1) * u64::from(self.next_access_cycles)
    }

    /// Beat count and total cycles of a burst read of `bytes`, as one pair —
    /// what every caller that both meters bus traffic and attributes read
    /// latency (the fetch-path block profiler) needs together.
    pub fn burst_read_profile(&self, bytes: u32) -> (u32, u64) {
        (self.beats_for(bytes), self.burst_read_cycles(bytes))
    }

    /// Completion cycle of each beat of a burst read of `bytes`, relative to
    /// issue. Beat `i` delivers bytes `[i*bus, (i+1)*bus)`.
    pub fn beat_completion_cycles(&self, bytes: u32) -> impl Iterator<Item = u64> + '_ {
        let beats = self.beats_for(bytes);
        (0..beats).map(move |i| {
            u64::from(self.first_access_cycles) + u64::from(i) * u64::from(self.next_access_cycles)
        })
    }

    /// Per-beat schedule of a burst read of `bytes`:
    /// `(beat index, bytes carried, completion cycle)` — the shape trace
    /// instrumentation wants for burst-beat events. A zero-byte read still
    /// schedules one (empty) beat, matching [`Self::burst_read_cycles`].
    pub fn burst_schedule(&self, bytes: u32) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        let beats = self.beats_for(bytes);
        (0..beats).map(move |i| {
            let carried = bytes.saturating_sub(i * self.bus_bytes).min(self.bus_bytes);
            let done = u64::from(self.first_access_cycles)
                + u64::from(i) * u64::from(self.next_access_cycles);
            (i, carried, done)
        })
    }

    /// Extra cycles an integrity-protected burst read of `payload` bytes
    /// costs over the unprotected read: the additional beats carrying
    /// `overhead` check bytes, plus `check_cycles` of checker latency after
    /// the data lands. Zero overhead and zero check cycles cost nothing —
    /// the armed-but-free case stays cycle-identical to unprotected.
    pub fn integrity_read_cycles(&self, payload: u32, overhead: u32, check_cycles: u32) -> u64 {
        self.burst_read_cycles(payload + overhead) - self.burst_read_cycles(payload)
            + u64::from(check_cycles)
    }

    /// Timing of a native cache-line fill using critical-word-first: the
    /// beat containing `critical_offset` is fetched first, so the missed
    /// word is ready after the first access (paper §4, Figure 2-a).
    ///
    /// # Panics
    ///
    /// Panics if `critical_offset` lies outside the line. This is a
    /// release-mode check: a wild offset means the caller computed the
    /// miss address wrong, and silently timing the fill anyway would
    /// corrupt every downstream cycle count.
    pub fn line_fill(&self, line_bytes: u32, critical_offset: u32) -> LineFill {
        assert!(
            critical_offset < line_bytes,
            "critical word offset {critical_offset} outside {line_bytes}-byte line"
        );
        LineFill {
            critical_word_ready: u64::from(self.first_access_cycles),
            fill_complete: self.burst_read_cycles(line_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let m = MemoryTiming::default();
        assert_eq!(m.first_access_cycles(), 10);
        assert_eq!(m.next_access_cycles(), 2);
        assert_eq!(m.bus_bits(), 64);
    }

    #[test]
    fn burst_read_profile_pairs_beats_with_cycles() {
        let m = MemoryTiming::default();
        for bytes in [0u32, 1, 8, 9, 64] {
            assert_eq!(
                m.burst_read_profile(bytes),
                (m.beats_for(bytes), m.burst_read_cycles(bytes)),
                "{bytes} bytes"
            );
        }
        assert_eq!(m.burst_read_profile(9), (2, 12));
    }

    #[test]
    fn burst_of_one_beat_costs_first_access_only() {
        let m = MemoryTiming::default();
        assert_eq!(m.burst_read_cycles(8), 10);
        assert_eq!(m.burst_read_cycles(1), 10);
        assert_eq!(
            m.burst_read_cycles(0),
            10,
            "a zero-length read still round-trips"
        );
    }

    #[test]
    fn narrow_bus_needs_more_beats() {
        let m = MemoryTiming::default().with_bus_bits(16);
        // 32 bytes over 2-byte bus: 16 beats → 10 + 15*2 = 40.
        assert_eq!(m.burst_read_cycles(32), 40);
    }

    #[test]
    fn wide_bus_fills_line_in_fewer_beats() {
        let m = MemoryTiming::default().with_bus_bits(128);
        // 32 bytes over 16-byte bus: 2 beats → 12.
        assert_eq!(m.burst_read_cycles(32), 12);
    }

    #[test]
    fn latency_scaling_rounds_and_clamps() {
        let m = MemoryTiming::default().scaled_latency(0.5);
        assert_eq!(m.first_access_cycles(), 5);
        assert_eq!(m.next_access_cycles(), 1);
        let m = MemoryTiming::default().scaled_latency(8.0);
        assert_eq!(m.first_access_cycles(), 80);
        assert_eq!(m.next_access_cycles(), 16);
        let m = MemoryTiming::new(1, 1, 8).scaled_latency(0.25);
        assert_eq!(m.next_access_cycles(), 1, "clamped to one cycle");
    }

    #[test]
    fn integrity_overhead_prices_extra_beats_plus_check() {
        let m = MemoryTiming::default();
        // 32-byte payload + 4-byte CRC: 36 bytes is 5 beats vs 4 → one
        // extra 2-cycle beat, plus 2 checker cycles.
        assert_eq!(m.integrity_read_cycles(32, 4, 2), 4);
        // Overhead that fits in the last partial beat costs only the check.
        assert_eq!(m.integrity_read_cycles(30, 2, 1), 1);
        // No overhead, no check: free.
        assert_eq!(m.integrity_read_cycles(32, 0, 0), 0);
    }

    #[test]
    fn critical_word_first_beats_full_fill() {
        let m = MemoryTiming::default();
        let f = m.line_fill(32, 28);
        assert_eq!(f.critical_word_ready, 10);
        assert_eq!(f.fill_complete, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bus_panics() {
        let _ = MemoryTiming::new(10, 2, 7);
    }

    #[test]
    #[should_panic(expected = "bus width must be a power of two bytes (got 24 bits")]
    fn non_power_of_two_bus_bits_fails_with_bus_width_message() {
        // Regression: 24 passes the whole-bytes check and used to die
        // inside `new` with an unrelated message.
        let _ = MemoryTiming::default().with_bus_bits(24);
    }

    #[test]
    #[should_panic(expected = "outside 32-byte line")]
    fn wild_critical_offset_is_rejected_in_release_builds() {
        // Regression: this was a debug_assert!, so release builds would
        // silently accept an offset past the line.
        let _ = MemoryTiming::default().line_fill(32, 32);
    }

    #[test]
    fn largest_valid_critical_offset_is_accepted() {
        let f = MemoryTiming::default().line_fill(32, 31);
        assert_eq!(f.critical_word_ready, 10);
    }
}
