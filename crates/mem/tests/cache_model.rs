//! Property test: the optimized `Cache` agrees with a straightforward
//! reference model (per-set vectors with explicit LRU reordering) on every
//! access of a random trace.

use codepack_mem::{Cache, CacheConfig, FullyAssociativeCache};
use codepack_testkit::forall;
use codepack_testkit::prop::{gen, Gen};

/// Obviously-correct set-associative LRU: each set is a Vec in MRU order.
struct ReferenceCache {
    sets: Vec<Vec<u32>>, // each holds tags, most recent first
    ways: usize,
    line_shift: u32,
    set_mask: u32,
    set_bits: u32,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> ReferenceCache {
        ReferenceCache {
            sets: vec![Vec::new(); cfg.sets() as usize],
            ways: cfg.assoc() as usize,
            line_shift: cfg.line_bytes().trailing_zeros(),
            set_mask: cfg.sets() - 1,
            set_bits: cfg.sets().trailing_zeros(),
        }
    }

    fn access(&mut self, addr: u32) -> bool {
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_bits;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == tag) {
            entries.remove(pos);
            entries.insert(0, tag);
            true
        } else {
            if entries.len() == self.ways {
                entries.pop();
            }
            entries.insert(0, tag);
            false
        }
    }
}

fn arb_config() -> Gen<CacheConfig> {
    gen::ints(0u32..4)
        .zip(gen::ints(0u32..3))
        .map(|(size_sel, assoc_sel)| {
            let assoc = 1 << assoc_sel; // 1, 2, 4
            let size = (1u32 << (9 + size_sel)) * assoc.max(1); // keeps ≥1 set, pow2 sets
            CacheConfig::new(size, 32, assoc)
        })
}

/// Traces with locality: mostly small addresses, occasional far jumps.
fn arb_trace() -> Gen<Vec<u32>> {
    gen::vec_of(
        gen::weighted(vec![(4, gen::ints(0u32..4096)), (1, gen::any_int::<u32>())]),
        1..600,
    )
}

#[test]
fn cache_matches_reference_model() {
    forall!(cases = 64, (arb_config(), arb_trace()), |cfg, trace| {
        let mut cache = Cache::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for (i, &addr) in trace.iter().enumerate() {
            let got = cache.access(addr);
            let want = reference.access(addr);
            assert_eq!(got, want, "access {} to {:#x} diverged", i, addr);
        }
        assert_eq!(cache.stats().accesses, trace.len() as u64);
    });
}

#[test]
fn probe_agrees_with_access_history() {
    forall!(cases = 64, (arb_trace()), |trace| {
        let cfg = CacheConfig::new(2048, 32, 2);
        let mut cache = Cache::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for &addr in &trace {
            // Probe must predict exactly what a (non-mutating) hit would be.
            assert_eq!(cache.probe(addr), {
                let block = addr >> 5;
                let set = (block & (cfg.sets() - 1)) as usize;
                let tag = block >> cfg.sets().trailing_zeros();
                reference.sets[set].contains(&tag)
            });
            cache.access(addr);
            reference.access(addr);
        }
    });
}

#[test]
fn fully_associative_is_order_invariant_for_hits() {
    forall!(
        cases = 64,
        (gen::vec_of(gen::ints(0u32..64), 1..200)),
        |keys| {
            // A fully-associative cache big enough for the key universe never
            // misses twice on the same key.
            let mut c = FullyAssociativeCache::new(64, 1);
            let mut seen = std::collections::HashSet::new();
            for &k in &keys {
                let hit = c.access(k);
                assert_eq!(hit, seen.contains(&k));
                seen.insert(k);
            }
        }
    );
}
