//! Tests that each structural pipeline limit actually binds: shrinking any
//! resource must not speed the machine up, and starving one must slow it
//! down on a workload designed to stress it.

use codepack_core::NativeFetch;
use codepack_cpu::{Machine, Pipeline, PipelineConfig, PipelineStats};
use codepack_isa::{Assembler, Instruction, Program, Reg};
use codepack_mem::{CacheConfig, MemoryTiming};

fn run(config: PipelineConfig, program: &Program) -> PipelineStats {
    let mut machine = Machine::load(program);
    let mut pipe = Pipeline::new(
        config,
        CacheConfig::icache_4issue(),
        CacheConfig::dcache_4issue(),
        MemoryTiming::default(),
        Box::new(NativeFetch::new(MemoryTiming::default())),
    );
    pipe.run(&mut machine, u64::MAX).expect("program runs")
}

/// A warm loop of independent ALU work with one load per iteration.
fn ilp_program(iters: i32) -> Program {
    let mut a = Assembler::new();
    a.li(Reg::S0, iters);
    let top = a.new_label();
    a.bind(top);
    for i in 0..6 {
        a.push(Instruction::Addiu {
            rt: Reg::new(8 + i),
            rs: Reg::ZERO,
            imm: i as i16,
        });
    }
    a.li(Reg::T6, codepack_isa::DATA_BASE as i32);
    a.push(Instruction::Lw {
        rt: Reg::T8,
        base: Reg::T6,
        offset: 0,
    });
    a.push(Instruction::Addiu {
        rt: Reg::S0,
        rs: Reg::S0,
        imm: -1,
    });
    a.bgtz(Reg::S0, top);
    a.halt();
    a.finish("ilp").expect("assembles")
}

/// A loop of back-to-back loads with cold addresses: stresses the LSQ and
/// memory ports.
fn memory_program(iters: i32) -> Program {
    let mut a = Assembler::new();
    a.li(Reg::S0, iters);
    a.li(Reg::T0, codepack_isa::DATA_BASE as i32);
    let top = a.new_label();
    a.bind(top);
    for k in 0..4 {
        a.push(Instruction::Lw {
            rt: Reg::new(8 + k),
            base: Reg::T0,
            offset: (k as i16) * 4,
        });
        a.push(Instruction::Sw {
            rt: Reg::new(8 + k),
            base: Reg::T0,
            offset: 64 + (k as i16) * 4,
        });
    }
    a.push(Instruction::Addiu {
        rt: Reg::T0,
        rs: Reg::T0,
        imm: 128,
    });
    a.push(Instruction::Andi {
        rt: Reg::T0,
        rs: Reg::T0,
        imm: 0x3fff,
    });
    a.push(Instruction::Lui {
        rt: Reg::AT,
        imm: (codepack_isa::DATA_BASE >> 16) as u16,
    });
    a.push(Instruction::Or {
        rd: Reg::T0,
        rs: Reg::T0,
        rt: Reg::AT,
    });
    a.push(Instruction::Addiu {
        rt: Reg::S0,
        rs: Reg::S0,
        imm: -1,
    });
    a.bgtz(Reg::S0, top);
    a.halt();
    a.finish("mem").expect("assembles")
}

#[test]
fn tiny_fetch_queue_throttles_the_front_end() {
    let program = ilp_program(2000);
    let wide = PipelineConfig::four_issue();
    let starved = PipelineConfig {
        fetch_queue: 1,
        ..wide
    };
    let a = run(wide, &program);
    let b = run(starved, &program);
    assert!(b.cycles >= a.cycles, "shrinking a resource cannot help");
}

#[test]
fn tiny_ruu_throttles_runahead() {
    let program = ilp_program(2000);
    let wide = PipelineConfig::four_issue();
    let starved = PipelineConfig {
        ruu_size: 4,
        ..wide
    };
    let a = run(wide, &program);
    let b = run(starved, &program);
    assert!(
        b.cycles as f64 > a.cycles as f64 * 1.05,
        "a 4-entry RUU must visibly stall a 4-wide machine: {} vs {}",
        b.cycles,
        a.cycles
    );
}

#[test]
fn tiny_lsq_throttles_memory_code() {
    let program = memory_program(1500);
    let wide = PipelineConfig::four_issue();
    let starved = PipelineConfig {
        lsq_size: 1,
        ..wide
    };
    let a = run(wide, &program);
    let b = run(starved, &program);
    assert!(
        b.cycles > a.cycles,
        "a 1-entry LSQ must slow a load/store loop: {} vs {}",
        b.cycles,
        a.cycles
    );
}

#[test]
fn narrow_commit_caps_ipc() {
    let program = ilp_program(2000);
    let wide = PipelineConfig::four_issue();
    let narrow = PipelineConfig {
        commit_width: 1,
        ..wide
    };
    let a = run(wide, &program);
    let b = run(narrow, &program);
    assert!(
        b.ipc() <= 1.01,
        "commit width 1 bounds IPC at 1, got {}",
        b.ipc()
    );
    assert!(a.ipc() > b.ipc());
}

#[test]
fn single_memport_halves_memory_throughput() {
    let program = memory_program(1500);
    let two_ports = PipelineConfig::four_issue();
    let mut one_port = two_ports;
    one_port.fu.mem_port = 1;
    let a = run(two_ports, &program);
    let b = run(one_port, &program);
    assert!(
        b.cycles as f64 > a.cycles as f64 * 1.10,
        "halving memory ports must hurt a memory loop: {} vs {}",
        b.cycles,
        a.cycles
    );
}

#[test]
fn issue_width_binds_on_wide_ilp() {
    let program = ilp_program(2000);
    let four = PipelineConfig::four_issue();
    let two = PipelineConfig {
        issue_width: 2,
        ..four
    };
    let a = run(four, &program);
    let b = run(two, &program);
    assert!(b.cycles > a.cycles);
}

#[test]
fn eight_issue_dominates_four_issue_dominates_one() {
    let program = ilp_program(4000);
    let one = run(PipelineConfig::one_issue(), &program);
    let four = run(PipelineConfig::four_issue(), &program);
    let eight = run(PipelineConfig::eight_issue(), &program);
    assert!(one.ipc() < four.ipc());
    assert!(four.ipc() <= eight.ipc() * 1.001);
}
