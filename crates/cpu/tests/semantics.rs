//! Property tests of the executor's instruction semantics against direct
//! Rust computations: every ALU result must match wrapping 2's-complement
//! arithmetic, shifts must mask their amounts, and comparisons must respect
//! signedness.

use codepack_cpu::Machine;
use codepack_isa::{Assembler, Instruction, Reg};
use codepack_testkit::forall;
use codepack_testkit::prop::gen;

/// Runs a one-instruction program with `$t0 = a`, `$t1 = b` and returns
/// `$t2` (or whatever the instruction wrote).
fn run_binop(build: impl FnOnce(&mut Assembler), a: u32, b: u32, result: Reg) -> u32 {
    let mut asm = Assembler::new();
    asm.li(Reg::T0, a as i32);
    asm.li(Reg::T1, b as i32);
    build(&mut asm);
    asm.halt();
    let program = asm.finish("t").expect("assembles");
    let mut m = Machine::load(&program);
    m.run(100).expect("executes");
    assert!(m.halted());
    m.reg(result)
}

#[test]
fn addu_wraps() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::any_int::<u32>()),
        |a, b| {
            let got = run_binop(
                |m| {
                    m.push(Instruction::Addu {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(got, a.wrapping_add(b));
        }
    );
}

#[test]
fn subu_wraps() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::any_int::<u32>()),
        |a, b| {
            let got = run_binop(
                |m| {
                    m.push(Instruction::Subu {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(got, a.wrapping_sub(b));
        }
    );
}

#[test]
fn logic_ops() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::any_int::<u32>()),
        |a, b| {
            for (mk, expect) in [
                (
                    Instruction::And {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    },
                    a & b,
                ),
                (
                    Instruction::Or {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    },
                    a | b,
                ),
                (
                    Instruction::Xor {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    },
                    a ^ b,
                ),
                (
                    Instruction::Nor {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    },
                    !(a | b),
                ),
            ] {
                let got = run_binop(
                    |m| {
                        m.push(mk);
                    },
                    a,
                    b,
                    Reg::T2,
                );
                assert_eq!(got, expect);
            }
        }
    );
}

#[test]
fn set_less_than_signed_and_unsigned() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::any_int::<u32>()),
        |a, b| {
            let slt = run_binop(
                |m| {
                    m.push(Instruction::Slt {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(slt, u32::from((a as i32) < (b as i32)));
            let sltu = run_binop(
                |m| {
                    m.push(Instruction::Sltu {
                        rd: Reg::T2,
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(sltu, u32::from(a < b));
        }
    );
}

#[test]
fn variable_shifts_mask_the_amount() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::any_int::<u32>()),
        |a, b| {
            let sh = b & 31;
            let sllv = run_binop(
                |m| {
                    m.push(Instruction::Sllv {
                        rd: Reg::T2,
                        rt: Reg::T0,
                        rs: Reg::T1,
                    });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(sllv, a << sh);
            let srav = run_binop(
                |m| {
                    m.push(Instruction::Srav {
                        rd: Reg::T2,
                        rt: Reg::T0,
                        rs: Reg::T1,
                    });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(srav, ((a as i32) >> sh) as u32);
        }
    );
}

#[test]
fn immediate_ops() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::any_int::<i16>()),
        |a, imm| {
            let ui = imm as u16;
            let got = run_binop(
                |m| {
                    m.push(Instruction::Addiu {
                        rt: Reg::T2,
                        rs: Reg::T0,
                        imm,
                    });
                },
                a,
                0,
                Reg::T2,
            );
            assert_eq!(got, a.wrapping_add(imm as i32 as u32));
            let got = run_binop(
                |m| {
                    m.push(Instruction::Andi {
                        rt: Reg::T2,
                        rs: Reg::T0,
                        imm: ui,
                    });
                },
                a,
                0,
                Reg::T2,
            );
            assert_eq!(got, a & u32::from(ui));
            let got = run_binop(
                |m| {
                    m.push(Instruction::Sltiu {
                        rt: Reg::T2,
                        rs: Reg::T0,
                        imm,
                    });
                },
                a,
                0,
                Reg::T2,
            );
            assert_eq!(got, u32::from(a < (imm as i32 as u32)));
        }
    );
}

#[test]
fn mult_divu_hi_lo() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::ints(1..=u32::MAX)),
        |a, b| {
            let lo = run_binop(
                |m| {
                    m.push(Instruction::Multu {
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                    m.push(Instruction::Mflo { rd: Reg::T2 });
                    m.push(Instruction::Mfhi { rd: Reg::T3 });
                },
                a,
                b,
                Reg::T2,
            );
            let hi = run_binop(
                |m| {
                    m.push(Instruction::Multu {
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                    m.push(Instruction::Mfhi { rd: Reg::T3 });
                },
                a,
                b,
                Reg::T3,
            );
            let prod = u64::from(a) * u64::from(b);
            assert_eq!(lo, prod as u32);
            assert_eq!(hi, (prod >> 32) as u32);

            let q = run_binop(
                |m| {
                    m.push(Instruction::Divu {
                        rs: Reg::T0,
                        rt: Reg::T1,
                    });
                    m.push(Instruction::Mflo { rd: Reg::T2 });
                },
                a,
                b,
                Reg::T2,
            );
            assert_eq!(q, a / b);
        }
    );
}

#[test]
fn memory_word_roundtrip() {
    forall!(
        cases = 128,
        (gen::any_int::<u32>(), gen::ints(0u32..1024)),
        |v, offset| {
            let addr = codepack_isa::DATA_BASE + offset * 4;
            let got = run_binop(
                |m| {
                    m.li(Reg::T3, addr as i32);
                    m.push(Instruction::Sw {
                        rt: Reg::T0,
                        base: Reg::T3,
                        offset: 0,
                    });
                    m.push(Instruction::Lw {
                        rt: Reg::T2,
                        base: Reg::T3,
                        offset: 0,
                    });
                },
                v,
                0,
                Reg::T2,
            );
            assert_eq!(got, v);
        }
    );
}

/// Signed division edge cases that wrap or are left undefined by MIPS.
#[test]
fn signed_division_edges() {
    // i32::MIN / -1 overflows: the executor must not panic (MIPS leaves it
    // undefined; we use wrapping semantics).
    let q = run_binop(
        |m| {
            m.push(Instruction::Div {
                rs: Reg::T0,
                rt: Reg::T1,
            });
            m.push(Instruction::Mflo { rd: Reg::T2 });
        },
        i32::MIN as u32,
        -1i32 as u32,
        Reg::T2,
    );
    assert_eq!(q, i32::MIN as u32, "wrapping division");

    // Division by zero leaves HI/LO unchanged, not a trap.
    let q = run_binop(
        |m| {
            m.push(Instruction::Div {
                rs: Reg::T0,
                rt: Reg::T1,
            });
            m.push(Instruction::Mflo { rd: Reg::T2 });
        },
        123,
        0,
        Reg::T2,
    );
    assert_eq!(q, 0, "HI/LO still hold their reset values");
}

#[test]
fn lui_shifts_into_high_half() {
    let got = run_binop(
        |m| {
            m.push(Instruction::Lui {
                rt: Reg::T2,
                imm: 0xbeef,
            });
        },
        0,
        0,
        Reg::T2,
    );
    assert_eq!(got, 0xbeef_0000);
}
