//! Branch predictors: bimodal, gshare, and a hybrid chooser, plus a return
//! address stack — the predictor complement of the paper's Table 2
//! ("bimode 2048 entries / gshare with 14-bit history / hybrid predictors
//! with 1024 entry meta table").

/// Two-bit saturating counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAK_TAKEN: Counter2 = Counter2(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Configuration of a direction predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorConfig {
    /// Always predict taken (used by tests and as a degenerate baseline).
    Static,
    /// Bimodal: a table of 2-bit counters indexed by PC.
    Bimodal {
        /// Table entries (power of two).
        entries: usize,
    },
    /// Gshare: global history XOR PC indexing a 2-bit counter table of
    /// `2^history_bits` entries.
    Gshare {
        /// History length in bits.
        history_bits: u32,
    },
    /// Hybrid: a meta table chooses between a bimodal and a gshare
    /// component per branch.
    Hybrid {
        /// Meta-table entries (power of two).
        meta_entries: usize,
        /// Bimodal component size.
        bimodal_entries: usize,
        /// Gshare component history bits.
        history_bits: u32,
    },
}

impl PredictorConfig {
    /// The paper's 1-issue predictor: bimodal, 2048 entries.
    pub fn paper_1issue() -> PredictorConfig {
        PredictorConfig::Bimodal { entries: 2048 }
    }

    /// The paper's 4-issue predictor: gshare with 14-bit history.
    pub fn paper_4issue() -> PredictorConfig {
        PredictorConfig::Gshare { history_bits: 14 }
    }

    /// The paper's 8-issue predictor: hybrid with a 1024-entry meta table.
    pub fn paper_8issue() -> PredictorConfig {
        PredictorConfig::Hybrid {
            meta_entries: 1024,
            bimodal_entries: 2048,
            history_bits: 14,
        }
    }

    /// Builds the predictor.
    pub fn build(&self) -> DirectionPredictor {
        let inner = match *self {
            PredictorConfig::Static => Inner::Static,
            PredictorConfig::Bimodal { entries } => {
                assert!(
                    entries.is_power_of_two(),
                    "bimodal table must be a power of two"
                );
                Inner::Bimodal {
                    table: vec![Counter2::WEAK_TAKEN; entries],
                }
            }
            PredictorConfig::Gshare { history_bits } => {
                assert!(history_bits <= 20, "history beyond 20 bits is unrealistic");
                Inner::Gshare {
                    table: vec![Counter2::WEAK_TAKEN; 1 << history_bits],
                    history: 0,
                    mask: (1u32 << history_bits) - 1,
                }
            }
            PredictorConfig::Hybrid {
                meta_entries,
                bimodal_entries,
                history_bits,
            } => {
                assert!(meta_entries.is_power_of_two());
                Inner::Hybrid {
                    meta: vec![Counter2::WEAK_TAKEN; meta_entries],
                    bimodal: vec![Counter2::WEAK_TAKEN; bimodal_entries],
                    gshare: vec![Counter2::WEAK_TAKEN; 1 << history_bits],
                    history: 0,
                    mask: (1u32 << history_bits) - 1,
                }
            }
        };
        DirectionPredictor {
            inner,
            stats: PredictorStats::default(),
        }
    }
}

/// Lookup/outcome counters of a direction predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Predictions made.
    pub lookups: u64,
    /// Predictions that matched the actual direction.
    pub correct: u64,
}

impl PredictorStats {
    /// Prediction accuracy in [0, 1]; 1 when no lookups occurred.
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }
}

/// A conditional-branch direction predictor.
///
/// `predict_and_train` performs the predict-at-fetch / train-at-commit pair
/// in one call — the trace-driven pipeline knows the true outcome when it
/// processes the branch.
#[derive(Clone, Debug)]
pub struct DirectionPredictor {
    inner: Inner,
    stats: PredictorStats,
}

#[derive(Clone, Debug)]
enum Inner {
    Static,
    Bimodal {
        table: Vec<Counter2>,
    },
    Gshare {
        table: Vec<Counter2>,
        history: u32,
        mask: u32,
    },
    Hybrid {
        meta: Vec<Counter2>,
        bimodal: Vec<Counter2>,
        gshare: Vec<Counter2>,
        history: u32,
        mask: u32,
    },
}

impl DirectionPredictor {
    /// Accumulated lookup/outcome counters.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Returns the direction that was predicted for the branch at `pc`,
    /// then trains on the actual outcome `taken`.
    pub fn predict_and_train(&mut self, pc: u32, taken: bool) -> bool {
        let predicted = self.lookup_and_train(pc, taken);
        self.stats.lookups += 1;
        self.stats.correct += u64::from(predicted == taken);
        predicted
    }

    fn lookup_and_train(&mut self, pc: u32, taken: bool) -> bool {
        match &mut self.inner {
            Inner::Static => true,
            Inner::Bimodal { table } => {
                let idx = ((pc >> 2) as usize) & (table.len() - 1);
                let predicted = table[idx].predict();
                table[idx].train(taken);
                predicted
            }
            Inner::Gshare {
                table,
                history,
                mask,
            } => {
                let idx = (((pc >> 2) ^ *history) & *mask) as usize;
                let predicted = table[idx].predict();
                table[idx].train(taken);
                *history = ((*history << 1) | u32::from(taken)) & *mask;
                predicted
            }
            Inner::Hybrid {
                meta,
                bimodal,
                gshare,
                history,
                mask,
            } => {
                let b_idx = ((pc >> 2) as usize) & (bimodal.len() - 1);
                let g_idx = (((pc >> 2) ^ *history) & *mask) as usize;
                let m_idx = ((pc >> 2) as usize) & (meta.len() - 1);
                let b_pred = bimodal[b_idx].predict();
                let g_pred = gshare[g_idx].predict();
                let use_gshare = meta[m_idx].predict();
                let predicted = if use_gshare { g_pred } else { b_pred };
                // Train components and the chooser (toward whichever was right).
                bimodal[b_idx].train(taken);
                gshare[g_idx].train(taken);
                if b_pred != g_pred {
                    meta[m_idx].train(g_pred == taken);
                }
                *history = ((*history << 1) | u32::from(taken)) & *mask;
                predicted
            }
        }
    }
}

/// A return-address stack for predicting `jr $ra` targets.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<u32>,
    capacity: usize,
}

impl Default for ReturnAddressStack {
    fn default() -> ReturnAddressStack {
        ReturnAddressStack::new(8)
    }
}

impl ReturnAddressStack {
    /// Creates a RAS of the given depth.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Records a call's return address (oldest entry drops when full).
    pub fn push(&mut self, return_addr: u32) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_addr);
    }

    /// Pops the predicted return target; `None` when empty.
    pub fn pop(&mut self) -> Option<u32> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = PredictorConfig::Bimodal { entries: 16 }.build();
        for _ in 0..4 {
            p.predict_and_train(0x100, false);
        }
        assert!(!p.predict_and_train(0x100, false), "trained not-taken");
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        let mut p = PredictorConfig::Gshare { history_bits: 8 }.build();
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            if p.predict_and_train(0x40, taken) == taken {
                correct += 1;
            }
        }
        // After warmup, history disambiguates the alternation perfectly.
        assert!(
            correct > 150,
            "gshare should learn T/NT alternation, got {correct}/200"
        );
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = PredictorConfig::Bimodal { entries: 16 }.build();
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            if p.predict_and_train(0x40, taken) == taken {
                correct += 1;
            }
        }
        assert!(correct < 150, "bimodal lacks history, got {correct}/200");
    }

    #[test]
    fn hybrid_tracks_the_better_component() {
        let mut p = PredictorConfig::paper_8issue().build();
        let mut correct = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            if p.predict_and_train(0x40, taken) == taken {
                correct += 1;
            }
        }
        assert!(
            correct > 250,
            "hybrid should defer to gshare here, got {correct}/400"
        );
    }

    #[test]
    fn predictor_stats_track_lookups_and_accuracy() {
        let mut p = PredictorConfig::Static.build();
        assert_eq!(p.stats(), PredictorStats::default());
        assert!(
            (p.stats().accuracy() - 1.0).abs() < 1e-12,
            "vacuously perfect"
        );
        p.predict_and_train(0x40, true); // static predicts taken: correct
        p.predict_and_train(0x40, false); // incorrect
        let s = p.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.correct, 1);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "entry 1 was displaced");
    }

    #[test]
    fn counters_saturate() {
        let mut c = Counter2::WEAK_TAKEN;
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.0, 3);
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.0, 0);
    }
}
