//! Trace-driven cycle-level pipeline models.
//!
//! One parameterized model covers the paper's three machines (Table 2): the
//! 1-issue in-order 5-stage pipeline and the 4/8-issue out-of-order RUU
//! machines. The model is trace-driven, like SimpleScalar's `sim-outorder`:
//! the functional [`Machine`](crate::Machine) retires instructions in
//! program order and the timing model assigns each one fetch / dispatch /
//! issue / writeback / commit cycles subject to:
//!
//! * fetch-width instructions per cycle from the L1 I-cache, fetch group
//!   ending at taken branches; I-misses serviced by a pluggable
//!   [`FetchEngine`] (native burst read or the CodePack decompressor),
//! * a fetch queue decoupling fetch from dispatch,
//! * decode/dispatch width and RUU / LSQ occupancy limits,
//! * operand readiness through registers (with store→load forwarding by
//!   exact address), function-unit counts and latencies, issue width,
//! * branch prediction (bimodal / gshare / hybrid + return-address stack);
//!   a mispredict restarts fetch after the branch resolves,
//! * in-order commit, commit-width per cycle.

use codepack_core::{FetchEngine, MissSource};
use codepack_isa::{Instruction, Reg};
use codepack_mem::{
    Cache, CacheConfig, CacheStats, FaultDomain, FaultStats, MemoryTiming, SoftErrorConfig,
};
use codepack_obs::{names, EventKind, FaultArea, MissOrigin, Obs};

use crate::bpred::{DirectionPredictor, PredictorConfig, ReturnAddressStack};
use crate::exec::{ExecError, Machine, StepInfo};

/// Function-unit classes (paper Table 2 lists per-class counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuClass {
    /// Integer ALU (also resolves branches).
    IntAlu,
    /// Integer multiplier/divider.
    IntMult,
    /// Load/store port.
    MemPort,
    /// FP adder/comparator/converter.
    FpAlu,
    /// FP multiplier/divider.
    FpMult,
}

/// Per-class function unit counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuCounts {
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multipliers.
    pub int_mult: u32,
    /// Memory ports.
    pub mem_port: u32,
    /// FP ALUs.
    pub fp_alu: u32,
    /// FP multipliers.
    pub fp_mult: u32,
}

/// Full configuration of one simulated machine's pipeline.
///
/// The three constructors reproduce the paper's Table 2 rows. RUU/LSQ depths
/// for the out-of-order machines are not legible in the published table; we
/// use 64/32 (4-issue) and 128/64 (8-issue), conventional for SimpleScalar
/// studies of that era (documented in DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Fetch-queue depth (instructions buffered between fetch and decode).
    pub fetch_queue: usize,
    /// Instructions decoded/dispatched per cycle.
    pub decode_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Issue strictly in program order (the 1-issue machine).
    pub in_order: bool,
    /// Register update unit (reorder window) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Function-unit counts.
    pub fu: FuCounts,
    /// Branch direction predictor.
    pub predictor: PredictorConfig,
}

impl PipelineConfig {
    /// The paper's 1-issue machine: single issue, in order, 5-stage.
    pub fn one_issue() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 1,
            fetch_queue: 4,
            decode_width: 1,
            issue_width: 1,
            commit_width: 2,
            in_order: true,
            ruu_size: 8,
            lsq_size: 4,
            fu: FuCounts {
                int_alu: 1,
                int_mult: 1,
                mem_port: 1,
                fp_alu: 1,
                fp_mult: 1,
            },
            predictor: PredictorConfig::paper_1issue(),
        }
    }

    /// The paper's 4-issue machine: out-of-order, 4-wide.
    pub fn four_issue() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 4,
            fetch_queue: 16,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            in_order: false,
            ruu_size: 64,
            lsq_size: 32,
            fu: FuCounts {
                int_alu: 4,
                int_mult: 1,
                mem_port: 2,
                fp_alu: 4,
                fp_mult: 1,
            },
            predictor: PredictorConfig::paper_4issue(),
        }
    }

    /// The paper's 8-issue machine: out-of-order, 8-wide.
    pub fn eight_issue() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 8,
            fetch_queue: 32,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            in_order: false,
            ruu_size: 128,
            lsq_size: 64,
            fu: FuCounts {
                int_alu: 8,
                int_mult: 1,
                mem_port: 2,
                fp_alu: 8,
                fp_mult: 1,
            },
            predictor: PredictorConfig::paper_8issue(),
        }
    }
}

/// Configuration of an optional unified L2 between the L1 I-cache and the
/// miss-service engine. With CodePack, this models the natural placement of
/// the decompressor *behind* the L2: the L2 holds native lines, so L2 hits
/// pay no decompression and only L2 misses reach the decompressor — the
/// follow-on design point the paper's conclusions gesture at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Config {
    /// L2 geometry.
    pub cache: CacheConfig,
    /// L1-miss/L2-hit service latency in cycles.
    pub hit_cycles: u32,
}

impl L2Config {
    /// A conventional embedded L2: unified, 8-way, 12-cycle hit.
    pub fn unified_kb(kb: u32) -> L2Config {
        L2Config {
            cache: CacheConfig::new(kb * 1024, 32, 8),
            hit_cycles: 12,
        }
    }
}

/// Timing results of one simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PipelineStats {
    /// Total simulated cycles (commit time of the last instruction).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L1 I-cache statistics.
    pub icache: CacheStats,
    /// L1 D-cache statistics.
    pub dcache: CacheStats,
    /// L2 statistics, when an L2 was configured.
    pub l2: Option<CacheStats>,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
    /// Indirect jumps whose target was mispredicted (incl. RAS misses).
    pub indirect_mispredicts: u64,
    /// Soft-error ledger: pipeline-side (resident I-cache line) strikes
    /// merged with the fetch engine's memory-side domains at end of run.
    pub faults: FaultStats,
}

impl PipelineStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch prediction accuracy in [0, 1].
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// One register-file slot in the ready-time scoreboard.
const HI_LO: usize = 32;
const INT_SLOTS: usize = 33;
const FCC: usize = 32;
const FP_SLOTS: usize = 33;

/// Issue-bandwidth ring: large enough that the in-flight window can never
/// wrap onto itself (window is bounded by RUU lifetime ≪ ring size).
const ISSUE_RING: usize = 1 << 16;

/// A cycle-level pipeline bound to an I-miss service engine.
///
/// Drives a functional [`Machine`] and accounts cycles; see the module
/// documentation for the model.
pub struct Pipeline {
    config: PipelineConfig,
    icache: Cache,
    dcache: Cache,
    l2: Option<(Cache, u32)>,
    dmem: MemoryTiming,
    fetch_engine: Box<dyn FetchEngine>,
    predictor: DirectionPredictor,
    ras: ReturnAddressStack,

    // --- time state ---
    fetch_cycle: u64,
    fetched_this_cycle: u32,
    cur_fetch_line: Option<u32>,
    /// Streaming constraint of the line currently being filled: words after
    /// the critical one arrive at the memory/decompressor rate, not
    /// instantly (native critical-word-first streams the rest of the burst;
    /// the decompressor forwards instructions as it decodes them).
    miss_stream: Option<MissStream>,
    disp_cycle: u64,
    dispatched_this_cycle: u32,
    commit_cycle: u64,
    committed_this_cycle: u32,
    last_issue: u64,
    int_ready: [u64; INT_SLOTS],
    fp_ready: [u64; FP_SLOTS],
    store_wb: std::collections::HashMap<u32, u64>,
    fu_free: FuPools,
    issue_count: Vec<u16>,
    issue_clear_hi: u64,
    commit_ring: Vec<u64>,
    lsq_ring: Vec<u64>,
    disp_ring: Vec<u64>,
    seq: u64,
    mem_seq: u64,
    stats: PipelineStats,
    /// Soft-error configuration for resident I-cache lines; `None` leaves
    /// the hit path untouched.
    soft_errors: Option<SoftErrorConfig>,
    /// Set when the fetch engine reports an unrecoverable fault; [`Self::run`]
    /// turns it into a precise [`ExecError::MachineCheck`].
    pending_machine_check: Option<u32>,
    /// Observability handle; [`Obs::disabled`] (the default) costs one
    /// predictable branch per instrumentation site.
    obs: Obs,
}

#[derive(Clone, Copy)]
struct MissStream {
    line: u32,
    critical_word: u32,
    critical_at: u64,
    fill_at: u64,
}

struct FuPools {
    int_alu: Vec<u64>,
    int_mult: Vec<u64>,
    mem_port: Vec<u64>,
    fp_alu: Vec<u64>,
    fp_mult: Vec<u64>,
}

impl FuPools {
    fn new(fu: &FuCounts) -> FuPools {
        FuPools {
            int_alu: vec![0; fu.int_alu as usize],
            int_mult: vec![0; fu.int_mult as usize],
            mem_port: vec![0; fu.mem_port as usize],
            fp_alu: vec![0; fu.fp_alu as usize],
            fp_mult: vec![0; fu.fp_mult as usize],
        }
    }

    fn pool(&mut self, class: FuClass) -> &mut Vec<u64> {
        match class {
            FuClass::IntAlu => &mut self.int_alu,
            FuClass::IntMult => &mut self.int_mult,
            FuClass::MemPort => &mut self.mem_port,
            FuClass::FpAlu => &mut self.fp_alu,
            FuClass::FpMult => &mut self.fp_mult,
        }
    }

    /// Earliest cycle ≥ `earliest` at which a unit is free; reserves it
    /// until `occupancy` cycles after the returned time.
    fn acquire(&mut self, class: FuClass, earliest: u64, occupancy: u64) -> u64 {
        let pool = self.pool(class);
        let (idx, &free_at) = pool
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("every class has at least one unit");
        let start = earliest.max(free_at);
        pool[idx] = start + occupancy;
        start
    }
}

/// Execution latency and FU occupancy of an instruction.
fn latency(insn: &Instruction) -> (FuClass, u64, u64) {
    use Instruction::*;
    match insn {
        Mult { .. } | Multu { .. } => (FuClass::IntMult, 3, 1),
        Div { .. } | Divu { .. } => (FuClass::IntMult, 20, 19),
        Mfhi { .. } | Mflo { .. } => (FuClass::IntAlu, 1, 1),
        AddS { .. }
        | SubS { .. }
        | CEqS { .. }
        | CLtS { .. }
        | CLeS { .. }
        | MovS { .. }
        | CvtSW { .. }
        | CvtWS { .. } => (FuClass::FpAlu, 2, 1),
        MulS { .. } => (FuClass::FpMult, 4, 1),
        DivS { .. } => (FuClass::FpMult, 12, 12),
        i if i.is_load() || i.is_store() => (FuClass::MemPort, 1, 1),
        _ => (FuClass::IntAlu, 1, 1),
    }
}

/// Source-operand register slots read by an instruction.
fn sources(insn: &Instruction) -> [Option<(bool, usize)>; 3] {
    use Instruction::*;
    // (is_fp, slot)
    let int = |r: Reg| Some((false, r.index() as usize));
    let fp = |r: codepack_isa::FReg| Some((true, r.index() as usize));
    match *insn {
        Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => [int(rt), None, None],
        Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => [int(rt), int(rs), None],
        Jr { rs } | Jalr { rs, .. } => [int(rs), None, None],
        Mfhi { .. } | Mflo { .. } => [Some((false, HI_LO)), None, None],
        Mult { rs, rt } | Multu { rs, rt } | Div { rs, rt } | Divu { rs, rt } => {
            [int(rs), int(rt), None]
        }
        Addu { rs, rt, .. }
        | Subu { rs, rt, .. }
        | And { rs, rt, .. }
        | Or { rs, rt, .. }
        | Xor { rs, rt, .. }
        | Nor { rs, rt, .. }
        | Slt { rs, rt, .. }
        | Sltu { rs, rt, .. }
        | Beq { rs, rt, .. }
        | Bne { rs, rt, .. } => [int(rs), int(rt), None],
        Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => {
            [int(rs), None, None]
        }
        Addiu { rs, .. }
        | Slti { rs, .. }
        | Sltiu { rs, .. }
        | Andi { rs, .. }
        | Ori { rs, .. }
        | Xori { rs, .. } => [int(rs), None, None],
        Lb { base, .. }
        | Lh { base, .. }
        | Lw { base, .. }
        | Lbu { base, .. }
        | Lhu { base, .. } => [int(base), None, None],
        Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => {
            [int(rt), int(base), None]
        }
        Lwc1 { base, .. } => [int(base), None, None],
        Swc1 { ft, base, .. } => [fp(ft), int(base), None],
        AddS { fs, ft, .. } | SubS { fs, ft, .. } | MulS { fs, ft, .. } | DivS { fs, ft, .. } => {
            [fp(fs), fp(ft), None]
        }
        MovS { fs, .. } | CvtSW { fs, .. } | CvtWS { fs, .. } => [fp(fs), None, None],
        CEqS { fs, ft } | CLtS { fs, ft } | CLeS { fs, ft } => [fp(fs), fp(ft), None],
        Bc1t { .. } | Bc1f { .. } => [Some((true, FCC)), None, None],
        Mtc1 { rt, .. } => [int(rt), None, None],
        Mfc1 { fs, .. } => [fp(fs), None, None],
        Lui { .. } | J { .. } | Jal { .. } | Syscall | Break => [None, None, None],
    }
}

/// Destination register slot written by an instruction.
fn destination(insn: &Instruction) -> Option<(bool, usize)> {
    use Instruction::*;
    let int = |r: Reg| Some((false, r.index() as usize));
    let fp = |r: codepack_isa::FReg| Some((true, r.index() as usize));
    match *insn {
        Sll { rd, .. }
        | Srl { rd, .. }
        | Sra { rd, .. }
        | Sllv { rd, .. }
        | Srlv { rd, .. }
        | Srav { rd, .. }
        | Mfhi { rd }
        | Mflo { rd }
        | Addu { rd, .. }
        | Subu { rd, .. }
        | And { rd, .. }
        | Or { rd, .. }
        | Xor { rd, .. }
        | Nor { rd, .. }
        | Slt { rd, .. }
        | Sltu { rd, .. }
        | Jalr { rd, .. } => int(rd),
        Mult { .. } | Multu { .. } | Div { .. } | Divu { .. } => Some((false, HI_LO)),
        Addiu { rt, .. }
        | Slti { rt, .. }
        | Sltiu { rt, .. }
        | Andi { rt, .. }
        | Ori { rt, .. }
        | Xori { rt, .. }
        | Lui { rt, .. }
        | Lb { rt, .. }
        | Lh { rt, .. }
        | Lw { rt, .. }
        | Lbu { rt, .. }
        | Lhu { rt, .. }
        | Mfc1 { rt, .. } => int(rt),
        Jal { .. } => int(Reg::RA),
        AddS { fd, .. }
        | SubS { fd, .. }
        | MulS { fd, .. }
        | DivS { fd, .. }
        | MovS { fd, .. }
        | CvtSW { fd, .. }
        | CvtWS { fd, .. } => fp(fd),
        CEqS { .. } | CLtS { .. } | CLeS { .. } => Some((true, FCC)),
        Mtc1 { fs, .. } => fp(fs),
        Lwc1 { ft, .. } => fp(ft),
        _ => None,
    }
}

impl Pipeline {
    /// Builds a pipeline with the given caches and I-miss service engine.
    ///
    /// `dmem` is the main-memory timing used for D-cache misses (the same
    /// memory the fetch engine models on the I-side).
    pub fn new(
        config: PipelineConfig,
        icache_cfg: CacheConfig,
        dcache_cfg: CacheConfig,
        dmem: MemoryTiming,
        fetch_engine: Box<dyn FetchEngine>,
    ) -> Pipeline {
        Pipeline {
            predictor: config.predictor.build(),
            ras: ReturnAddressStack::default(),
            icache: Cache::new(icache_cfg),
            dcache: Cache::new(dcache_cfg),
            l2: None,
            dmem,
            fetch_engine,
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            cur_fetch_line: None,
            miss_stream: None,
            disp_cycle: 0,
            dispatched_this_cycle: 0,
            commit_cycle: 0,
            committed_this_cycle: 0,
            last_issue: 0,
            int_ready: [0; INT_SLOTS],
            fp_ready: [0; FP_SLOTS],
            store_wb: std::collections::HashMap::new(),
            fu_free: FuPools::new(&config.fu),
            issue_count: vec![0; ISSUE_RING],
            issue_clear_hi: 0,
            commit_ring: vec![0; config.ruu_size],
            lsq_ring: vec![0; config.lsq_size],
            disp_ring: vec![0; config.fetch_queue],
            seq: 0,
            mem_seq: 0,
            stats: PipelineStats::default(),
            soft_errors: None,
            pending_machine_check: None,
            obs: Obs::disabled(),
            config,
        }
    }

    /// Installs an observability handle. Events on the miss/mispredict path
    /// and end-of-run metrics flow to it; pass [`Obs::disabled`] (the
    /// construction default) to turn instrumentation back off.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Takes the observability handle back (leaving a disabled one), so the
    /// caller can close it into a report after [`Self::run`].
    pub fn take_obs(&mut self) -> Obs {
        self.obs.take()
    }

    /// The configuration this pipeline was built with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The I-miss service engine (for its statistics).
    pub fn fetch_engine(&self) -> &dyn FetchEngine {
        self.fetch_engine.as_ref()
    }

    /// Arms (or disarms, with `None`) soft-error injection on resident
    /// I-cache lines. The same configuration's memory-side domains are the
    /// fetch engine's responsibility — install it there with
    /// `CodePackFetch::with_protection`; this method covers only strikes on
    /// data already resident in the L1 I-cache.
    pub fn set_soft_errors(&mut self, soft_errors: Option<SoftErrorConfig>) {
        self.soft_errors = soft_errors;
    }

    /// The statistics accumulated so far. After [`Self::run`] returns
    /// `Err(ExecError::MachineCheck { .. })` this still carries the cycle
    /// and fault ledger up to the trap.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Installs a unified L2 between the L1 I-cache and the miss engine.
    /// L1 misses that hit the L2 are served at `hit_cycles`; only L2 misses
    /// reach the engine (which also fills the L2).
    pub fn set_l2(&mut self, config: L2Config) {
        self.l2 = Some((Cache::new(config.cache), config.hit_cycles));
    }

    /// Runs `machine` until it halts or `max_insns` instructions retire;
    /// returns the timing statistics.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors ([`ExecError`]), including the
    /// precise [`ExecError::MachineCheck`] raised when a detected soft error
    /// exhausts its re-fetch budget; partial statistics remain readable
    /// through [`Self::stats`] in that case.
    pub fn run(
        &mut self,
        machine: &mut Machine,
        max_insns: u64,
    ) -> Result<PipelineStats, ExecError> {
        while !machine.halted() && self.stats.instructions < max_insns {
            let info = machine.step()?;
            if machine.halted() {
                break;
            }
            self.account(&info);
            if let Some(pc) = self.pending_machine_check {
                self.finish_stats();
                return Err(ExecError::MachineCheck { pc });
            }
        }
        self.finish_stats();
        Ok(self.stats)
    }

    /// Snapshots cache statistics, merges the fetch engine's fault ledger,
    /// and folds end-of-run metrics into the observability registry.
    fn finish_stats(&mut self) {
        self.stats.icache = self.icache.stats();
        self.stats.dcache = self.dcache.stats();
        self.stats.l2 = self.l2.as_ref().map(|(c, _)| c.stats());
        self.stats.cycles = self.commit_cycle.max(1);
        self.stats.faults.merge(&self.fetch_engine.fault_stats());
        // Let the fetch engine fill in the deferred per-block decode-path
        // counters before the summary metrics are folded below.
        let mut obs = std::mem::replace(&mut self.obs, Obs::disabled());
        self.fetch_engine.finalize_profile(&mut obs);
        self.obs = obs;
        self.finalize_obs();
    }

    /// Folds end-of-run counters into the observability registry (no-op
    /// when the handle is disabled).
    fn finalize_obs(&mut self) {
        if !self.obs.enabled() {
            return;
        }
        let s = self.stats;
        self.obs.incr("pipeline.instructions", s.instructions);
        self.obs.incr("pipeline.cycles", s.cycles);
        self.obs.set_gauge("pipeline.ipc", s.ipc());
        for (name, c) in [("icache", s.icache), ("dcache", s.dcache)]
            .into_iter()
            .chain(s.l2.map(|c| ("l2", c)))
        {
            self.obs.incr(&format!("{name}.accesses"), c.accesses);
            self.obs.incr(&format!("{name}.hits"), c.hits);
            self.obs.incr(&format!("{name}.evictions"), c.evictions);
        }
        let f = self.fetch_engine.stats();
        self.obs.incr("fetch.misses", f.misses);
        self.obs.incr("fetch.buffer_hits", f.buffer_hits);
        self.obs.incr("fetch.index_hits", f.index_hits);
        self.obs.incr("fetch.index_misses", f.index_misses);
        self.obs.incr("fetch.memory_beats", f.memory_beats);
        self.obs
            .set_gauge("fetch.avg_miss_penalty", f.avg_miss_penalty());
        self.obs.incr("branch.conditional", s.branches);
        self.obs.incr("branch.mispredicts", s.mispredicts);
        self.obs
            .incr("branch.indirect_mispredicts", s.indirect_mispredicts);
        let p = self.predictor.stats();
        self.obs.incr("bpred.lookups", p.lookups);
        self.obs.incr("bpred.correct", p.correct);
        self.obs.set_gauge("bpred.accuracy", p.accuracy());
        // Fault counters only appear once a fault actually fired, so a run
        // armed at rate 0 stays metric-identical to an unarmed run.
        let ft = s.faults;
        if !ft.is_empty() {
            self.obs.incr(names::FAULT_INJECTED, ft.injected);
            self.obs.incr(names::FAULT_DETECTED, ft.detected);
            self.obs.incr(names::FAULT_RECOVERED, ft.recovered);
            self.obs.incr(names::FAULT_TRAPPED, ft.trapped);
            self.obs.incr(names::FAULT_SILENT, ft.silent);
            self.obs.incr(names::FAULT_RETRIES, ft.retries);
            self.obs
                .incr(names::FAULT_MACHINE_CHECKS, ft.machine_checks);
        }
        // Profile summary counters only appear when a profile was armed, so
        // un-profiled runs stay metric-identical (the per-block data lives
        // in the profile artifact, not the registry).
        let summary = self.obs.profile().map(|p| {
            let t = p.totals();
            (
                p.blocks_touched() as u64,
                t.fetches,
                t.decode_fast,
                t.decode_scalar,
            )
        });
        if let Some((touched, fetches, fast, scalar)) = summary {
            self.obs.incr(names::PROFILE_BLOCKS_TOUCHED, touched);
            self.obs.incr(names::PROFILE_FETCHES, fetches);
            self.obs.incr(names::PROFILE_DECODE_FAST, fast);
            self.obs.incr(names::PROFILE_DECODE_SCALAR, scalar);
        }
    }

    /// Accounts one retired instruction. Exposed for fine-grained tests.
    pub fn account(&mut self, info: &StepInfo) {
        self.stats.instructions += 1;
        let line_bytes = self.icache.config().line_bytes();
        let line = info.pc & !(line_bytes - 1);

        // ---- fetch ----
        if self.cur_fetch_line != Some(line) {
            // New line: consult the I-cache (and miss engine) at the current
            // fetch cycle; a new line also starts a new fetch cycle slot.
            if self.fetched_this_cycle > 0 {
                self.fetch_cycle += 1;
                self.fetched_this_cycle = 0;
            }
            let mut hit = self.icache.access(info.pc);
            if hit {
                hit = self.probe_resident_line(line, line_bytes);
            }
            if hit {
                self.miss_stream = None;
            } else {
                self.obs
                    .emit(self.fetch_cycle, EventKind::IcacheMiss { pc: info.pc });
                // L2 (if present) intercepts the miss; the engine only
                // services L2 misses and fills the L2 line.
                let l2_hit = match &mut self.l2 {
                    Some((l2, _)) => l2.access(info.pc),
                    None => false,
                };
                let (crit, fill, origin, index_cycles) = if l2_hit {
                    let lat = u64::from(self.l2.as_ref().expect("l2 present").1);
                    (lat, lat + 2, MissOrigin::Memory, 0)
                } else {
                    let svc = self.fetch_engine.service_miss_traced(
                        info.pc,
                        line_bytes,
                        self.fetch_cycle,
                        &mut self.obs,
                    );
                    if svc.machine_check {
                        // Unrecoverable fault: the instruction never
                        // retires; the trap is precise at this pc, stamped
                        // when the exhausted service gave up.
                        self.stats.instructions -= 1;
                        let trap_at = self.fetch_cycle + svc.critical_ready;
                        self.obs
                            .emit(trap_at, EventKind::MachineCheck { pc: info.pc });
                        self.commit_cycle = self.commit_cycle.max(trap_at);
                        self.pending_machine_check = Some(info.pc);
                        return;
                    }
                    let origin = match svc.source {
                        MissSource::Memory => MissOrigin::Memory,
                        MissSource::Decompressor => MissOrigin::Decompressor,
                        MissSource::OutputBuffer => MissOrigin::OutputBuffer,
                    };
                    (
                        svc.critical_ready,
                        svc.line_fill_complete,
                        origin,
                        svc.index_cycles,
                    )
                };
                let critical_at = self.fetch_cycle + crit;
                if self.obs.enabled() {
                    self.obs.emit(
                        critical_at,
                        EventKind::MissServed {
                            pc: info.pc,
                            origin,
                            critical: crit,
                            fill,
                            index_cycles,
                        },
                    );
                    self.obs.observe("fetch.critical_cycles", crit);
                }
                self.miss_stream = Some(MissStream {
                    line,
                    critical_word: (info.pc % line_bytes) / 4,
                    critical_at,
                    fill_at: self.fetch_cycle + fill,
                });
                self.fetch_cycle = critical_at;
            }
            self.cur_fetch_line = Some(line);
        } else if let Some(ms) = self.miss_stream {
            // Later words of a missed line stream in behind the critical
            // word; fetch cannot outrun the fill.
            if ms.line == line {
                let words = line_bytes / 4;
                let word = (info.pc % line_bytes) / 4;
                let dist = u64::from((word + words - ms.critical_word) % words);
                let bound = ms.critical_at
                    + dist * (ms.fill_at - ms.critical_at) / u64::from(words - 1).max(1);
                if bound > self.fetch_cycle {
                    self.fetch_cycle = bound;
                    self.fetched_this_cycle = 0;
                }
            }
        }
        // Fetch-queue back-pressure: slot frees when an instruction dispatches.
        let fq_limit = self.disp_ring[(self.seq % self.disp_ring.len() as u64) as usize];
        if fq_limit > self.fetch_cycle {
            self.fetch_cycle = fq_limit;
            self.fetched_this_cycle = 0;
        }
        let fetch_t = self.fetch_cycle;
        self.fetched_this_cycle += 1;
        if self.fetched_this_cycle >= self.config.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }

        // ---- dispatch ----
        let mut disp_t = (fetch_t + 1).max(self.disp_cycle);
        // RUU occupancy: the entry we reuse must have committed.
        let ruu_limit = self.commit_ring[(self.seq % self.commit_ring.len() as u64) as usize];
        disp_t = disp_t.max(ruu_limit);
        let is_mem = info.mem.is_some();
        if is_mem {
            let lsq_limit = self.lsq_ring[(self.mem_seq % self.lsq_ring.len() as u64) as usize];
            disp_t = disp_t.max(lsq_limit);
        }
        if disp_t > self.disp_cycle {
            self.disp_cycle = disp_t;
            self.dispatched_this_cycle = 0;
        }
        self.dispatched_this_cycle += 1;
        if self.dispatched_this_cycle >= self.config.decode_width {
            self.disp_cycle += 1;
            self.dispatched_this_cycle = 0;
        }
        let dr_len = self.disp_ring.len() as u64;
        self.disp_ring[(self.seq % dr_len) as usize] = disp_t;

        // ---- issue ----
        let mut ready_t = disp_t + 1;
        for src in sources(&info.insn).into_iter().flatten() {
            let (is_fp, slot) = src;
            let t = if is_fp {
                self.fp_ready[slot]
            } else {
                self.int_ready[slot]
            };
            ready_t = ready_t.max(t);
        }
        // Loads wait for the latest store to the same word (forwarding).
        if let Some(mem) = info.mem {
            if !mem.store {
                if let Some(&t) = self.store_wb.get(&(mem.addr >> 2)) {
                    ready_t = ready_t.max(t);
                }
            }
        }
        if self.config.in_order {
            ready_t = ready_t.max(self.last_issue);
        }
        let (fu, mut lat, occupancy) = latency(&info.insn);
        let mut issue_t = self.fu_free.acquire(fu, ready_t, occupancy);
        issue_t = self.take_issue_slot(issue_t);
        self.last_issue = issue_t;

        // ---- memory access (at issue) ----
        if let Some(mem) = info.mem {
            let hit = self.dcache.access(mem.addr);
            if mem.store {
                // Stores retire through the write buffer; a miss costs
                // memory beats but does not stall the pipeline.
                self.store_wb.insert(mem.addr >> 2, issue_t + lat);
            } else if !hit {
                let fill = self.dmem.line_fill(
                    self.dcache.config().line_bytes(),
                    mem.addr % self.dcache.config().line_bytes(),
                );
                lat += fill.critical_word_ready;
                self.obs.emit(
                    issue_t,
                    EventKind::DcacheMiss {
                        addr: mem.addr,
                        cycles: fill.critical_word_ready,
                    },
                );
            }
        }

        let wb_t = issue_t + lat;
        if let Some((is_fp, slot)) = destination(&info.insn) {
            if is_fp {
                self.fp_ready[slot] = wb_t;
            } else if slot != 0 {
                self.int_ready[slot] = wb_t;
            }
        }

        // ---- commit ----
        let mut commit_t = (wb_t + 1).max(self.commit_cycle);
        if commit_t > self.commit_cycle {
            self.commit_cycle = commit_t;
            self.committed_this_cycle = 0;
        }
        self.committed_this_cycle += 1;
        if self.committed_this_cycle >= self.config.commit_width {
            self.commit_cycle += 1;
            self.committed_this_cycle = 0;
            commit_t = self.commit_cycle;
        }
        let cr_len = self.commit_ring.len() as u64;
        self.commit_ring[(self.seq % cr_len) as usize] = commit_t;
        if is_mem {
            let lr_len = self.lsq_ring.len() as u64;
            self.lsq_ring[(self.mem_seq % lr_len) as usize] = commit_t;
            self.mem_seq += 1;
        }
        self.seq += 1;

        // ---- control flow: redirect fetch ----
        self.steer_fetch(info, fetch_t, wb_t);
    }

    /// Decides whether a soft error strikes the resident I-cache line being
    /// fetched this cycle. Returns `false` when a parity-detected strike
    /// forces the line to be invalidated and re-fetched through the normal
    /// miss path (whose service cycles then model the recovery cost).
    fn probe_resident_line(&mut self, line: u32, line_bytes: u32) -> bool {
        let Some(cfg) = self.soft_errors else {
            return true;
        };
        let Some(flips) = cfg.faults.probe(
            self.fetch_cycle,
            u64::from(line),
            FaultDomain::IcacheLine,
            line_bytes * 8,
        ) else {
            return true;
        };
        self.stats.faults.injected += 1;
        let area = FaultArea::IcacheLine;
        if self.obs.enabled() {
            self.obs.emit(
                self.fetch_cycle,
                EventKind::FaultInjected {
                    area,
                    addr: line,
                    flips: flips.count,
                },
            );
        }
        if cfg.integrity.icache_parity && flips.parity_detects() {
            // Parity caught the strike: invalidate and re-fetch. The gold
            // copy lives behind the miss engine, so one re-fetch always
            // cures an I-cache-resident fault.
            self.stats.faults.detected += 1;
            self.stats.faults.recovered += 1;
            self.stats.faults.retries += 1;
            if self.obs.enabled() {
                self.obs.emit(
                    self.fetch_cycle,
                    EventKind::FaultDetected { area, addr: line },
                );
                self.obs
                    .emit(self.fetch_cycle, EventKind::FaultRetry { area, attempt: 1 });
            }
            false
        } else {
            self.stats.faults.silent += 1;
            if self.obs.enabled() {
                self.obs.emit(
                    self.fetch_cycle,
                    EventKind::FaultSilent { area, addr: line },
                );
            }
            true
        }
    }

    /// Applies branch prediction and redirects the fetch cursor.
    fn steer_fetch(&mut self, info: &StepInfo, fetch_t: u64, resolve_t: u64) {
        use Instruction::*;
        let insn = &info.insn;
        if !insn.is_control() {
            return;
        }

        // (mispredicted, was an indirect-target mispredict)
        let (mispredicted, indirect) = match *insn {
            J { .. } => (false, false), // direction + target known at decode
            Jal { .. } => {
                self.ras.push(info.pc.wrapping_add(4));
                (false, false)
            }
            Jalr { .. } => {
                self.ras.push(info.pc.wrapping_add(4));
                (true, true) // indirect call target: no BTB modeled
            }
            Jr { rs } => {
                let predicted = self.ras.pop();
                let correct = rs == Reg::RA && predicted == Some(info.next_pc);
                if !correct {
                    self.stats.indirect_mispredicts += 1;
                }
                (!correct, !correct)
            }
            _ => {
                // Conditional branch.
                self.stats.branches += 1;
                let predicted = self.predictor.predict_and_train(info.pc, info.taken);
                let wrong = predicted != info.taken;
                if wrong {
                    self.stats.mispredicts += 1;
                }
                (wrong, false)
            }
        };

        if mispredicted {
            // Fetch restarts once the branch resolves.
            if self.obs.enabled() {
                self.obs.emit(
                    resolve_t,
                    EventKind::BranchMispredict {
                        pc: info.pc,
                        indirect,
                    },
                );
                // Cycles of fetch lost to the flush: the wrongly-fetched
                // path occupied fetch from just after the branch until
                // resolution.
                let flushed = (resolve_t + 1).saturating_sub(fetch_t + 1);
                if flushed > 0 {
                    self.obs
                        .emit(resolve_t, EventKind::PipelineFlush { cycles: flushed });
                }
            }
            self.cur_fetch_line = None;
            self.fetch_cycle = self.fetch_cycle.max(resolve_t + 1);
            self.fetched_this_cycle = 0;
        } else if info.taken {
            // Correctly predicted taken: the fetch group still ends.
            self.cur_fetch_line = None;
            self.fetch_cycle = self.fetch_cycle.max(fetch_t + 1);
            self.fetched_this_cycle = 0;
        }
    }

    /// Enforces the issue-width limit: finds the first cycle ≥ `t` with a
    /// free issue slot and claims it.
    fn take_issue_slot(&mut self, mut t: u64) -> u64 {
        // Lazily clear ring cells we are about to enter for the first time.
        while self.issue_clear_hi < t {
            self.issue_clear_hi += 1;
            self.issue_count[(self.issue_clear_hi % ISSUE_RING as u64) as usize] = 0;
        }
        loop {
            let cell = (t % ISSUE_RING as u64) as usize;
            if u32::from(self.issue_count[cell]) < self.config.issue_width {
                self.issue_count[cell] += 1;
                return t;
            }
            t += 1;
            if self.issue_clear_hi < t {
                self.issue_clear_hi = t;
                self.issue_count[(t % ISSUE_RING as u64) as usize] = 0;
            }
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_core::NativeFetch;
    use codepack_isa::Assembler;

    fn run_program(build: impl FnOnce(&mut Assembler), config: PipelineConfig) -> PipelineStats {
        let mut a = Assembler::new();
        build(&mut a);
        a.halt();
        let program = a.finish("t").unwrap();
        let mut machine = Machine::load(&program);
        let mut pipe = Pipeline::new(
            config,
            CacheConfig::icache_4issue(),
            CacheConfig::dcache_4issue(),
            MemoryTiming::default(),
            Box::new(NativeFetch::new(MemoryTiming::default())),
        );
        pipe.run(&mut machine, u64::MAX).unwrap()
    }

    fn straightline(a: &mut Assembler, n: usize) {
        // Independent instructions: alternate destination registers.
        for i in 0..n {
            let rd = Reg::new(8 + (i % 8) as u8);
            a.push(Instruction::Addiu {
                rt: rd,
                rs: Reg::ZERO,
                imm: i as i16,
            });
        }
    }

    /// A loop whose body is `width` independent instructions — I-cache warm
    /// after the first iteration, so IPC reflects the pipeline, not misses.
    fn ilp_loop(a: &mut Assembler, iterations: i32) {
        a.li(Reg::S0, iterations);
        let top = a.new_label();
        a.bind(top);
        for i in 0..8 {
            let rd = Reg::new(8 + i as u8);
            a.push(Instruction::Addiu {
                rt: rd,
                rs: Reg::ZERO,
                imm: i,
            });
        }
        a.push(Instruction::Addiu {
            rt: Reg::S0,
            rs: Reg::S0,
            imm: -1,
        });
        a.bgtz(Reg::S0, top);
    }

    #[test]
    fn wider_machine_is_faster_on_ilp() {
        let one = run_program(|a| ilp_loop(a, 2000), PipelineConfig::one_issue());
        let four = run_program(|a| ilp_loop(a, 2000), PipelineConfig::four_issue());
        assert!(
            one.ipc() <= 1.05,
            "1-issue cannot exceed IPC 1, got {}",
            one.ipc()
        );
        assert!(
            four.ipc() > 1.5 * one.ipc(),
            "4-issue should exploit ILP: {} vs {}",
            four.ipc(),
            one.ipc()
        );
    }

    #[test]
    fn dependent_chain_defeats_width() {
        let chain = |a: &mut Assembler| {
            a.li(Reg::T0, 0);
            for _ in 0..512 {
                a.push(Instruction::Addiu {
                    rt: Reg::T0,
                    rs: Reg::T0,
                    imm: 1,
                });
            }
        };
        let four = run_program(chain, PipelineConfig::four_issue());
        assert!(
            four.ipc() < 1.3,
            "a serial chain cannot go wide, got {}",
            four.ipc()
        );
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // A data-dependent unpredictable-ish branch pattern vs. none.
        let branchy = |a: &mut Assembler| {
            a.li(Reg::T0, 2048);
            a.li(Reg::T2, 0);
            let top = a.new_label();
            a.bind(top);
            // alternate taken/not-taken on t0 parity
            a.push(Instruction::Andi {
                rt: Reg::T1,
                rs: Reg::T0,
                imm: 1,
            });
            let skip = a.new_label();
            a.beq(Reg::T1, Reg::ZERO, skip);
            a.push(Instruction::Addiu {
                rt: Reg::T2,
                rs: Reg::T2,
                imm: 1,
            });
            a.bind(skip);
            a.push(Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::T0,
                imm: -1,
            });
            a.bgtz(Reg::T0, top);
        };
        let stats = run_program(branchy, PipelineConfig::four_issue());
        assert!(stats.branches > 4000);
        // gshare learns the alternation: accuracy should be high.
        assert!(
            stats.branch_accuracy() > 0.9,
            "accuracy {}",
            stats.branch_accuracy()
        );
    }

    #[test]
    fn dcache_misses_slow_pointer_chase() {
        let strided = |stride: i32| {
            move |a: &mut Assembler| {
                a.li(Reg::T0, codepack_isa::DATA_BASE as i32);
                a.li(Reg::T1, 2048);
                let top = a.new_label();
                a.bind(top);
                a.push(Instruction::Lw {
                    rt: Reg::T2,
                    base: Reg::T0,
                    offset: 0,
                });
                a.li(Reg::T3, stride);
                a.push(Instruction::Addu {
                    rd: Reg::T0,
                    rs: Reg::T0,
                    rt: Reg::T3,
                });
                a.push(Instruction::Addiu {
                    rt: Reg::T1,
                    rs: Reg::T1,
                    imm: -1,
                });
                a.bgtz(Reg::T1, top);
            }
        };
        let dense = run_program(strided(4), PipelineConfig::four_issue());
        let sparse = run_program(strided(64), PipelineConfig::four_issue());
        // 16-byte lines: stride 4 misses every 4th load, stride 64 always.
        assert!(dense.dcache.miss_ratio() < 0.3);
        assert!(sparse.dcache.miss_ratio() > 0.5);
        assert!(sparse.ipc() < dense.ipc());
    }

    #[test]
    fn icache_misses_are_counted_once_per_line() {
        // 512 sequential instructions = 64 lines, all cold misses, then halt.
        let stats = run_program(|a| straightline(a, 512), PipelineConfig::four_issue());
        assert!(stats.icache.misses() >= 64);
        assert!(stats.icache.misses() < 80, "got {}", stats.icache.misses());
    }

    #[test]
    fn ruu_limits_runahead_past_a_long_miss() {
        // A divide chain: the RUU must fill and stall dispatch.
        let divs = |a: &mut Assembler| {
            a.li(Reg::T0, 1000);
            a.li(Reg::T1, 7);
            for _ in 0..64 {
                a.push(Instruction::Div {
                    rs: Reg::T0,
                    rt: Reg::T1,
                });
                a.push(Instruction::Mflo { rd: Reg::T2 });
            }
        };
        let stats = run_program(divs, PipelineConfig::four_issue());
        // 64 dependent 20-cycle divides on one unit: IPC must be far below width.
        assert!(stats.ipc() < 0.5, "got {}", stats.ipc());
    }

    #[test]
    fn observability_does_not_perturb_timing() {
        use codepack_obs::RingSink;

        let build = |obs: Obs| {
            let mut a = Assembler::new();
            ilp_loop(&mut a, 500);
            a.halt();
            let program = a.finish("t").unwrap();
            let mut machine = Machine::load(&program);
            let mut pipe = Pipeline::new(
                PipelineConfig::four_issue(),
                CacheConfig::icache_4issue(),
                CacheConfig::dcache_4issue(),
                MemoryTiming::default(),
                Box::new(NativeFetch::new(MemoryTiming::default())),
            );
            pipe.set_obs(obs);
            let stats = pipe.run(&mut machine, u64::MAX).unwrap();
            (stats, pipe.take_obs())
        };

        let (plain, off) = build(Obs::disabled());
        assert!(!off.enabled());
        let (traced, obs) = build(Obs::with_sink(Box::new(RingSink::new(1 << 14))));
        assert_eq!(plain, traced, "observation must not change the model");

        let report = obs
            .into_report(traced.cycles, traced.instructions)
            .expect("enabled handle yields a report");
        assert_eq!(
            report.metrics.counter_value("pipeline.cycles"),
            Some(traced.cycles)
        );
        assert_eq!(
            report.metrics.counter_value("icache.accesses"),
            Some(traced.icache.accesses)
        );
        assert!(report.events_recorded > 0, "cold misses must emit events");
        assert!(
            (report.breakdown.component_sum() - report.breakdown.total).abs() < 1e-9,
            "attribution must close against measured CPI"
        );
        assert!(report.breakdown.icache_miss > 0.0);
    }

    #[test]
    fn mispredict_events_carry_flush_costs() {
        use codepack_obs::RingSink;

        let mut a = Assembler::new();
        // Data-dependent alternating branch: gshare needs warmup, so the
        // early iterations mispredict.
        a.li(Reg::T0, 64);
        let top = a.new_label();
        a.bind(top);
        a.push(Instruction::Andi {
            rt: Reg::T1,
            rs: Reg::T0,
            imm: 1,
        });
        let skip = a.new_label();
        a.beq(Reg::T1, Reg::ZERO, skip);
        a.push(Instruction::Addiu {
            rt: Reg::T2,
            rs: Reg::T2,
            imm: 1,
        });
        a.bind(skip);
        a.push(Instruction::Addiu {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -1,
        });
        a.bgtz(Reg::T0, top);
        a.halt();
        let program = a.finish("t").unwrap();
        let mut machine = Machine::load(&program);
        let mut pipe = Pipeline::new(
            PipelineConfig::four_issue(),
            CacheConfig::icache_4issue(),
            CacheConfig::dcache_4issue(),
            MemoryTiming::default(),
            Box::new(NativeFetch::new(MemoryTiming::default())),
        );
        pipe.set_obs(Obs::with_sink(Box::new(RingSink::new(1 << 14))));
        let stats = pipe.run(&mut machine, u64::MAX).unwrap();
        assert!(stats.mispredicts > 0);

        let report = pipe
            .take_obs()
            .into_report(stats.cycles, stats.instructions)
            .unwrap();
        let events = report.sink.events();
        let mispredicts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BranchMispredict { .. }))
            .count() as u64;
        assert_eq!(
            mispredicts,
            stats.mispredicts + stats.indirect_mispredicts,
            "every counted mispredict must be traced"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PipelineFlush { cycles } if cycles > 0)));
        assert_eq!(
            report.metrics.counter_value("bpred.lookups"),
            Some(stats.branches)
        );
    }

    #[test]
    fn in_order_serializes_independent_work() {
        let stats = run_program(|a| ilp_loop(a, 2000), PipelineConfig::one_issue());
        // Perfect pipelining approaches 1.0 once the I-cache is warm.
        assert!(stats.ipc() < 1.01);
        assert!(stats.ipc() > 0.7, "got {}", stats.ipc());
    }
}
