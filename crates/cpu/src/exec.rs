//! The functional SR32 executor.
//!
//! Executes a [`Program`] instruction by instruction, producing a
//! [`StepInfo`] per retired instruction that the timing models consume
//! (trace-driven timing, as SimpleScalar's `sim-outorder` does with its
//! functional core).

use std::error::Error;
use std::fmt;

use codepack_isa::{
    decode, DecodeInstructionError, Instruction, Program, Reg, STACK_BASE, TEXT_BASE,
};
use codepack_mem::SparseMemory;

/// Why execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the text section.
    PcOutOfText {
        /// The bad PC value.
        pc: u32,
    },
    /// An undecodable word was fetched.
    IllegalInstruction {
        /// PC of the bad word.
        pc: u32,
        /// The decode failure.
        cause: DecodeInstructionError,
    },
    /// A `break` instruction was executed.
    Break {
        /// PC of the `break`.
        pc: u32,
    },
    /// A `syscall` with an unsupported `$v0` code.
    UnknownSyscall {
        /// PC of the `syscall`.
        pc: u32,
        /// The `$v0` value.
        code: u32,
    },
    /// A soft error in the instruction-memory system was detected but could
    /// not be recovered within the re-fetch budget; the pipeline retired a
    /// precise machine-check trap instead of the faulted instruction.
    MachineCheck {
        /// PC whose fetch exhausted recovery.
        pc: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExecError::PcOutOfText { pc } => write!(f, "pc {pc:#010x} left the text section"),
            ExecError::IllegalInstruction { pc, cause } => {
                write!(f, "illegal instruction at {pc:#010x}: {cause}")
            }
            ExecError::Break { pc } => write!(f, "break trap at {pc:#010x}"),
            ExecError::UnknownSyscall { pc, code } => {
                write!(f, "unknown syscall {code} at {pc:#010x}")
            }
            ExecError::MachineCheck { pc } => {
                write!(
                    f,
                    "machine check: unrecoverable instruction-fetch fault at {pc:#010x}"
                )
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::IllegalInstruction { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// A memory access performed by one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u32,
    /// Was it a store?
    pub store: bool,
}

/// Everything the timing models need to know about one retired instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepInfo {
    /// PC of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub insn: Instruction,
    /// PC of the next instruction to execute.
    pub next_pc: u32,
    /// Data-memory access, if any.
    pub mem: Option<MemAccess>,
    /// For control instructions: did the branch/jump change the PC away from
    /// the fall-through path?
    pub taken: bool,
}

/// The architectural state of an SR32 machine plus its functional memory.
///
/// ```
/// use codepack_isa::{Assembler, Reg};
/// use codepack_cpu::Machine;
///
/// let mut a = Assembler::new();
/// a.li(Reg::T0, 21);
/// a.push(codepack_isa::Instruction::Addu { rd: Reg::T1, rs: Reg::T0, rt: Reg::T0 });
/// a.halt();
/// let program = a.finish("doubler").unwrap();
///
/// let mut m = Machine::load(&program);
/// while !m.halted() {
///     m.step().unwrap();
/// }
/// assert_eq!(m.reg(Reg::T1), 42);
/// ```
pub struct Machine {
    regs: [u32; 32],
    fregs: [f32; 32],
    hi: u32,
    lo: u32,
    fcc: bool,
    pc: u32,
    halted: bool,
    retired: u64,
    mem: SparseMemory,
    /// Pre-decoded text section (decode errors surface at execution).
    decoded: Vec<Result<Instruction, DecodeInstructionError>>,
}

impl Machine {
    /// Loads a program: text is pre-decoded, data copied to
    /// [`codepack_isa::DATA_BASE`], `$sp` set to [`STACK_BASE`], PC to the
    /// entry point.
    pub fn load(program: &Program) -> Machine {
        let decoded = program.text_words().iter().map(|&w| decode(w)).collect();
        let mut mem = SparseMemory::new();
        mem.load(codepack_isa::DATA_BASE, program.data_bytes());
        let mut regs = [0u32; 32];
        regs[Reg::SP.index() as usize] = STACK_BASE;
        Machine {
            regs,
            fregs: [0.0; 32],
            hi: 0,
            lo: 0,
            fcc: false,
            pc: program.entry(),
            halted: false,
            retired: 0,
            mem,
            decoded,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Has the program executed its halt syscall?
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes an integer register (writes to `$zero` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Reads an FP register.
    pub fn freg(&self, r: codepack_isa::FReg) -> f32 {
        self.fregs[r.index() as usize]
    }

    /// The functional data memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to the functional data memory (for test setup).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on illegal instructions, wild PCs, `break`,
    /// or unknown syscalls. After the halt syscall, `step` keeps returning
    /// the final `StepInfo` of the halt without advancing.
    pub fn step(&mut self) -> Result<StepInfo, ExecError> {
        use Instruction::*;

        let pc = self.pc;
        let index = pc
            .checked_sub(TEXT_BASE)
            .map(|o| (o / 4) as usize)
            .filter(|&i| i < self.decoded.len() && pc.is_multiple_of(4))
            .ok_or(ExecError::PcOutOfText { pc })?;
        let insn =
            self.decoded[index].map_err(|cause| ExecError::IllegalInstruction { pc, cause })?;

        let mut next_pc = pc.wrapping_add(4);
        let mut mem_access = None;
        let mut taken = false;

        macro_rules! branch {
            ($cond:expr, $offset:expr) => {
                if $cond {
                    next_pc = pc
                        .wrapping_add(4)
                        .wrapping_add(($offset as i32 as u32) << 2);
                    taken = true;
                }
            };
        }

        match insn {
            Sll { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) << shamt),
            Srl { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) >> shamt),
            Sra { rd, rt, shamt } => self.set_reg(rd, ((self.reg(rt) as i32) >> shamt) as u32),
            Sllv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) << (self.reg(rs) & 31)),
            Srlv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) >> (self.reg(rs) & 31)),
            Srav { rd, rt, rs } => {
                self.set_reg(rd, ((self.reg(rt) as i32) >> (self.reg(rs) & 31)) as u32)
            }
            Jr { rs } => {
                next_pc = self.reg(rs);
                taken = true;
            }
            Jalr { rd, rs } => {
                let target = self.reg(rs);
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                taken = true;
            }
            Mfhi { rd } => self.set_reg(rd, self.hi),
            Mflo { rd } => self.set_reg(rd, self.lo),
            Mult { rs, rt } => {
                let prod = i64::from(self.reg(rs) as i32) * i64::from(self.reg(rt) as i32);
                self.hi = (prod >> 32) as u32;
                self.lo = prod as u32;
            }
            Multu { rs, rt } => {
                let prod = u64::from(self.reg(rs)) * u64::from(self.reg(rt));
                self.hi = (prod >> 32) as u32;
                self.lo = prod as u32;
            }
            Div { rs, rt } => {
                let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                if b != 0 {
                    self.lo = a.wrapping_div(b) as u32;
                    self.hi = a.wrapping_rem(b) as u32;
                }
                // Division by zero leaves HI/LO unchanged (undefined in MIPS).
            }
            Divu { rs, rt } => {
                let (a, b) = (self.reg(rs), self.reg(rt));
                if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
                    self.lo = q;
                    self.hi = r;
                }
                // Division by zero leaves HI/LO unchanged (undefined in MIPS).
            }
            Addu { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt))),
            Subu { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt))),
            And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Slt { rd, rs, rt } => {
                self.set_reg(rd, ((self.reg(rs) as i32) < (self.reg(rt) as i32)) as u32)
            }
            Sltu { rd, rs, rt } => self.set_reg(rd, (self.reg(rs) < self.reg(rt)) as u32),
            Syscall => match self.reg(Reg::V0) {
                10 => {
                    self.halted = true;
                    next_pc = pc; // stay put
                }
                code => return Err(ExecError::UnknownSyscall { pc, code }),
            },
            Break => return Err(ExecError::Break { pc }),
            Beq { rs, rt, offset } => branch!(self.reg(rs) == self.reg(rt), offset),
            Bne { rs, rt, offset } => branch!(self.reg(rs) != self.reg(rt), offset),
            Blez { rs, offset } => branch!(self.reg(rs) as i32 <= 0, offset),
            Bgtz { rs, offset } => branch!(self.reg(rs) as i32 > 0, offset),
            Bltz { rs, offset } => branch!((self.reg(rs) as i32) < 0, offset),
            Bgez { rs, offset } => branch!(self.reg(rs) as i32 >= 0, offset),
            Addiu { rt, rs, imm } => self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => {
                self.set_reg(rt, ((self.reg(rs) as i32) < i32::from(imm)) as u32)
            }
            Sltiu { rt, rs, imm } => self.set_reg(rt, (self.reg(rs) < imm as i32 as u32) as u32),
            Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & u32::from(imm)),
            Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | u32::from(imm)),
            Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ u32::from(imm)),
            Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Lb { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.set_reg(rt, self.mem.read_u8(addr) as i8 as i32 as u32);
                mem_access = Some(MemAccess { addr, store: false });
            }
            Lh { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.set_reg(rt, self.mem.read_u16(addr) as i16 as i32 as u32);
                mem_access = Some(MemAccess { addr, store: false });
            }
            Lw { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.set_reg(rt, self.mem.read_u32(addr));
                mem_access = Some(MemAccess { addr, store: false });
            }
            Lbu { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.set_reg(rt, u32::from(self.mem.read_u8(addr)));
                mem_access = Some(MemAccess { addr, store: false });
            }
            Lhu { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.set_reg(rt, u32::from(self.mem.read_u16(addr)));
                mem_access = Some(MemAccess { addr, store: false });
            }
            Sb { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.mem.write_u8(addr, self.reg(rt) as u8);
                mem_access = Some(MemAccess { addr, store: true });
            }
            Sh { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.mem.write_u16(addr, self.reg(rt) as u16);
                mem_access = Some(MemAccess { addr, store: true });
            }
            Sw { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.mem.write_u32(addr, self.reg(rt));
                mem_access = Some(MemAccess { addr, store: true });
            }
            J { target } => {
                next_pc = (pc & 0xf000_0000) | (target << 2);
                taken = true;
            }
            Jal { target } => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                next_pc = (pc & 0xf000_0000) | (target << 2);
                taken = true;
            }
            AddS { fd, fs, ft } => self.set_freg(fd, self.fregs_at(fs) + self.fregs_at(ft)),
            SubS { fd, fs, ft } => self.set_freg(fd, self.fregs_at(fs) - self.fregs_at(ft)),
            MulS { fd, fs, ft } => self.set_freg(fd, self.fregs_at(fs) * self.fregs_at(ft)),
            DivS { fd, fs, ft } => self.set_freg(fd, self.fregs_at(fs) / self.fregs_at(ft)),
            MovS { fd, fs } => self.set_freg(fd, self.fregs_at(fs)),
            CEqS { fs, ft } => self.fcc = self.fregs_at(fs) == self.fregs_at(ft),
            CLtS { fs, ft } => self.fcc = self.fregs_at(fs) < self.fregs_at(ft),
            CLeS { fs, ft } => self.fcc = self.fregs_at(fs) <= self.fregs_at(ft),
            Bc1t { offset } => branch!(self.fcc, offset),
            Bc1f { offset } => branch!(!self.fcc, offset),
            Mtc1 { rt, fs } => self.set_freg(fs, f32::from_bits(self.reg(rt))),
            Mfc1 { rt, fs } => self.set_reg(rt, self.fregs_at(fs).to_bits()),
            CvtSW { fd, fs } => self.set_freg(fd, self.fregs_at(fs).to_bits() as i32 as f32),
            CvtWS { fd, fs } => {
                let truncated = self.fregs_at(fs) as i32; // saturating in Rust
                self.set_freg(fd, f32::from_bits(truncated as u32));
            }
            Lwc1 { ft, base, offset } => {
                let addr = self.ea(base, offset);
                self.set_freg(ft, f32::from_bits(self.mem.read_u32(addr)));
                mem_access = Some(MemAccess { addr, store: false });
            }
            Swc1 { ft, base, offset } => {
                let addr = self.ea(base, offset);
                self.mem.write_u32(addr, self.fregs_at(ft).to_bits());
                mem_access = Some(MemAccess { addr, store: true });
            }
        }

        self.pc = next_pc;
        if !self.halted {
            self.retired += 1;
        }
        Ok(StepInfo {
            pc,
            insn,
            next_pc,
            mem: mem_access,
            taken,
        })
    }

    #[inline]
    fn ea(&self, base: Reg, offset: i16) -> u32 {
        self.reg(base).wrapping_add(offset as i32 as u32)
    }

    #[inline]
    fn fregs_at(&self, r: codepack_isa::FReg) -> f32 {
        self.fregs[r.index() as usize]
    }

    #[inline]
    fn set_freg(&mut self, r: codepack_isa::FReg, v: f32) {
        self.fregs[r.index() as usize] = v;
    }

    /// Runs until the program halts or `max_insns` retire; returns retired
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run(&mut self, max_insns: u64) -> Result<u64, ExecError> {
        while !self.halted && self.retired < max_insns {
            self.step()?;
        }
        Ok(self.retired)
    }

    /// A fingerprint of architectural state (registers + HI/LO), used by
    /// equivalence tests between native and compressed-code runs.
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u32| {
            h ^= u64::from(v);
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for &r in &self.regs {
            mix(r);
        }
        for &f in &self.fregs {
            mix(f.to_bits());
        }
        mix(self.hi);
        mix(self.lo);
        mix(self.pc);
        h
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &format_args!("{:#010x}", self.pc))
            .field("retired", &self.retired)
            .field("halted", &self.halted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_isa::{Assembler, FReg};

    fn run_to_halt(program: &Program) -> Machine {
        let mut m = Machine::load(program);
        m.run(1_000_000).expect("program must execute cleanly");
        assert!(m.halted(), "program must halt");
        m
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        // sum 1..=100 via a countdown loop
        let mut a = Assembler::new();
        let top = a.new_label();
        a.li(Reg::T0, 100);
        a.li(Reg::T1, 0);
        a.bind(top);
        a.push(Instruction::Addu {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::T0,
        });
        a.push(Instruction::Addiu {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -1,
        });
        a.bgtz(Reg::T0, top);
        a.halt();
        let m = run_to_halt(&a.finish("sum").unwrap());
        assert_eq!(m.reg(Reg::T1), 5050);
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let mut a = Assembler::new();
        a.li(Reg::T0, codepack_isa::DATA_BASE as i32);
        a.li(Reg::T1, -2); // 0xfffffffe
        a.push(Instruction::Sb {
            rt: Reg::T1,
            base: Reg::T0,
            offset: 0,
        });
        a.push(Instruction::Lb {
            rt: Reg::T2,
            base: Reg::T0,
            offset: 0,
        });
        a.push(Instruction::Lbu {
            rt: Reg::T3,
            base: Reg::T0,
            offset: 0,
        });
        a.push(Instruction::Sh {
            rt: Reg::T1,
            base: Reg::T0,
            offset: 4,
        });
        a.push(Instruction::Lh {
            rt: Reg::T4,
            base: Reg::T0,
            offset: 4,
        });
        a.push(Instruction::Lhu {
            rt: Reg::T5,
            base: Reg::T0,
            offset: 4,
        });
        a.halt();
        let m = run_to_halt(&a.finish("mem").unwrap());
        assert_eq!(m.reg(Reg::T2), 0xffff_fffe);
        assert_eq!(m.reg(Reg::T3), 0x0000_00fe);
        assert_eq!(m.reg(Reg::T4), 0xffff_fffe);
        assert_eq!(m.reg(Reg::T5), 0x0000_fffe);
    }

    #[test]
    fn call_and_return() {
        let mut a = Assembler::new();
        let func = a.new_label();
        let done = a.new_label();
        a.jal(func);
        a.j(done);
        a.bind(func);
        a.li(Reg::V1, 77);
        a.push(Instruction::Jr { rs: Reg::RA });
        a.bind(done);
        a.halt();
        let m = run_to_halt(&a.finish("call").unwrap());
        assert_eq!(m.reg(Reg::V1), 77);
    }

    #[test]
    fn hi_lo_multiply_divide() {
        let mut a = Assembler::new();
        a.li(Reg::T0, 100_000);
        a.li(Reg::T1, 100_000);
        a.push(Instruction::Mult {
            rs: Reg::T0,
            rt: Reg::T1,
        });
        a.push(Instruction::Mfhi { rd: Reg::T2 });
        a.push(Instruction::Mflo { rd: Reg::T3 });
        a.li(Reg::T4, 17);
        a.li(Reg::T5, 5);
        a.push(Instruction::Div {
            rs: Reg::T4,
            rt: Reg::T5,
        });
        a.push(Instruction::Mflo { rd: Reg::T6 });
        a.push(Instruction::Mfhi { rd: Reg::T7 });
        a.halt();
        let m = run_to_halt(&a.finish("muldiv").unwrap());
        let prod = 100_000u64 * 100_000;
        assert_eq!(m.reg(Reg::T2), (prod >> 32) as u32);
        assert_eq!(m.reg(Reg::T3), prod as u32);
        assert_eq!(m.reg(Reg::T6), 3);
        assert_eq!(m.reg(Reg::T7), 2);
    }

    #[test]
    fn fp_kernel_computes() {
        let mut a = Assembler::new();
        a.li(Reg::T0, 3);
        a.push(Instruction::Mtc1 {
            rt: Reg::T0,
            fs: FReg::new(0),
        });
        a.push(Instruction::CvtSW {
            fd: FReg::new(1),
            fs: FReg::new(0),
        }); // f1 = 3.0
        a.push(Instruction::MulS {
            fd: FReg::new(2),
            fs: FReg::new(1),
            ft: FReg::new(1),
        }); // 9.0
        a.push(Instruction::AddS {
            fd: FReg::new(2),
            fs: FReg::new(2),
            ft: FReg::new(1),
        }); // 12.0
        a.push(Instruction::CLtS {
            fs: FReg::new(1),
            ft: FReg::new(2),
        }); // 3 < 12
        let set = a.new_label();
        a.bc1t(set);
        a.li(Reg::V1, 0);
        a.halt();
        a.bind(set);
        a.li(Reg::V1, 1);
        a.halt();
        let m = run_to_halt(&a.finish("fp").unwrap());
        assert_eq!(m.reg(Reg::V1), 1);
        assert_eq!(m.freg(FReg::new(2)), 12.0);
    }

    #[test]
    fn step_info_reports_branch_outcomes() {
        let mut a = Assembler::new();
        let skip = a.new_label();
        a.push(Instruction::Beq {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            offset: 1,
        }); // taken
        a.push(Instruction::NOP); // skipped
        a.bind(skip);
        a.push(Instruction::Bne {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            offset: 1,
        }); // not taken
        a.halt();
        let p = a.finish("branches").unwrap();
        let mut m = Machine::load(&p);
        let s1 = m.step().unwrap();
        assert!(s1.taken);
        assert_eq!(s1.next_pc, s1.pc + 8);
        let s2 = m.step().unwrap();
        assert!(!s2.taken);
        assert_eq!(s2.next_pc, s2.pc + 4);
    }

    #[test]
    fn wild_pc_is_an_error() {
        let mut a = Assembler::new();
        a.push(Instruction::Jr { rs: Reg::T0 }); // t0 == 0
        let p = a.finish("wild").unwrap();
        let mut m = Machine::load(&p);
        m.step().unwrap();
        assert!(matches!(m.step(), Err(ExecError::PcOutOfText { pc: 0 })));
    }

    #[test]
    fn illegal_word_is_an_error_with_source() {
        let mut a = Assembler::new();
        a.push_raw(0xffff_ffff);
        let p = a.finish("ill").unwrap();
        let mut m = Machine::load(&p);
        let err = m.step().unwrap_err();
        assert!(matches!(err, ExecError::IllegalInstruction { .. }));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn halt_is_sticky() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.finish("h").unwrap();
        let mut m = Machine::load(&p);
        m.run(100).unwrap();
        let retired = m.retired();
        m.step().unwrap();
        assert!(m.halted());
        assert_eq!(m.retired(), retired, "no progress after halt");
    }

    #[test]
    fn zero_register_ignores_writes() {
        let mut a = Assembler::new();
        a.push(Instruction::Addiu {
            rt: Reg::ZERO,
            rs: Reg::ZERO,
            imm: 42,
        });
        a.halt();
        let m = run_to_halt(&a.finish("z").unwrap());
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn state_hash_distinguishes_runs() {
        let mut a = Assembler::new();
        a.li(Reg::T0, 1);
        a.halt();
        let p1 = a.finish("a").unwrap();
        let mut b = Assembler::new();
        b.li(Reg::T0, 2);
        b.halt();
        let p2 = b.finish("b").unwrap();
        assert_ne!(run_to_halt(&p1).state_hash(), run_to_halt(&p2).state_hash());
    }
}
