//! # codepack-cpu — functional executor and pipeline timing models
//!
//! The SimpleScalar stand-in for the CodePack evaluation: a functional SR32
//! executor ([`Machine`]) drives parameterized cycle-level pipelines
//! ([`Pipeline`], [`PipelineConfig`]) covering the paper's Table 2 machines —
//! 1-issue in-order, and 4/8-issue out-of-order with RUU/LSQ windows,
//! function-unit contention, and bimodal/gshare/hybrid branch prediction.
//! The L1 I-miss path is pluggable ([`codepack_core::FetchEngine`]): native
//! burst reads or the CodePack decompressor.
//!
//! ```
//! use codepack_cpu::{Machine, Pipeline, PipelineConfig};
//! use codepack_core::NativeFetch;
//! use codepack_isa::{Assembler, Reg};
//! use codepack_mem::{CacheConfig, MemoryTiming};
//!
//! let mut a = Assembler::new();
//! let top = a.new_label();
//! a.li(Reg::T0, 1000);
//! a.bind(top);
//! a.push(codepack_isa::Instruction::Addiu { rt: Reg::T0, rs: Reg::T0, imm: -1 });
//! a.bgtz(Reg::T0, top);
//! a.halt();
//! let program = a.finish("loop").unwrap();
//!
//! let mut machine = Machine::load(&program);
//! let mut pipe = Pipeline::new(
//!     PipelineConfig::four_issue(),
//!     CacheConfig::icache_4issue(),
//!     CacheConfig::dcache_4issue(),
//!     MemoryTiming::default(),
//!     Box::new(NativeFetch::new(MemoryTiming::default())),
//! );
//! let stats = pipe.run(&mut machine, u64::MAX).unwrap();
//! assert!(stats.ipc() > 0.5);
//! ```

#![forbid(unsafe_code)]

mod bpred;
mod exec;
mod pipeline;

pub use bpred::{DirectionPredictor, PredictorConfig, PredictorStats, ReturnAddressStack};
pub use exec::{ExecError, Machine, MemAccess, StepInfo};
pub use pipeline::{FuClass, FuCounts, L2Config, Pipeline, PipelineConfig, PipelineStats};
