#!/usr/bin/env bash
# Hermeticity gate for the deterministic core crates.
#
# crates/core, crates/analyze, and crates/isa must be pure functions of
# their inputs: the codec's byte streams, the linter's reports, and the
# decoder tables are all golden-value- and cross-worker-compared in CI,
# so a wall-clock read or a random draw anywhere in them is a latent
# nondeterminism bug even if today's tests happen to pass.
#
# Enforced textually (fast, dependency-free, and impossible to dodge via
# cfg gymnastics):
#
#   * no std::time::Instant / SystemTime — wall clock reads
#   * no rand:: / rand_core:: — randomness (the workspace has no rand
#     crate; this also blocks a vendored copy sneaking in)
#   * HashMap/HashSet only in crates/core/src/dict.rs — hash iteration
#     order is seeded per process, so a HashMap iterated into any
#     serialized output (frames, reports, tables) is nondeterministic.
#     dict.rs is the one audited exception: its map feeds a counting
#     pass whose results are explicitly re-sorted with a total order
#     before they reach any output.
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(crates/core/src crates/analyze/src crates/isa/src)
fail=0

ban() {
    local pattern="$1" why="$2"
    shift 2
    if hits=$(grep -rn "$pattern" "$@" 2>/dev/null); then
        echo "hermeticity: $why:" >&2
        echo "$hits" >&2
        fail=1
    fi
}

ban 'std::time::Instant' "wall-clock Instant in a deterministic crate" "${CRATES[@]}"
ban 'SystemTime' "wall-clock SystemTime in a deterministic crate" "${CRATES[@]}"
ban 'rand::' "randomness in a deterministic crate" "${CRATES[@]}"
ban 'rand_core::' "randomness in a deterministic crate" "${CRATES[@]}"

# Hash collections everywhere except the audited dict.rs counting pass.
if hits=$(grep -rn 'HashMap\|HashSet' "${CRATES[@]}" 2>/dev/null \
        | grep -v '^crates/core/src/dict\.rs:'); then
    echo "hermeticity: hash collection outside crates/core/src/dict.rs" >&2
    echo "(seeded iteration order must never feed serialized output):" >&2
    echo "$hits" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "hermeticity gate FAILED" >&2
    exit 1
fi
echo "hermeticity gate: core/analyze/isa clean"
