#!/usr/bin/env python3
"""Validator for the BENCH_*.json scorecards.

Each scorecard is a versioned artifact (schema_version 1): CI validates
both the fresh smoke run and the checked-in full-mode numbers with this
one script, so each schema is enforced in exactly one place. The script
dispatches on the top-level "suite" field:

  suite "codec"   — per-profile decode rows (decode_throughput) plus an
                    optional "frame" section (frame_throughput) with
                    serial-vs-parallel .cpk pack/unpack rates.
  suite "service" — the `cpack loadgen` scorecard for cpackd: request
                    accounting (the zero-loss contract: lost,
                    duplicated, and mismatched must all be 0) and the
                    latency percentile ladder.

Usage:
    validate_bench.py FILE --mode smoke|full
                      [--min-speedup X] [--fast-beats-scalar]
                      [--require-frame] [--min-parallel-speedup X]
                      [--require-service]

The parallel-speedup floor is core-count aware: the frame section records
how many CPUs the bench saw, and the floor is only enforced when
cpus >= workers — a one-CPU container cannot exhibit parallel speedup,
and pretending otherwise would just teach people to ignore the gate.

Exit status is nonzero (with a message on stderr) on any violation.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
PROFILES = {"cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"}


FRAME_RATE_FIELDS = (
    "serial_pack_mb_s",
    "parallel_pack_mb_s",
    "pack_speedup",
    "serial_unpack_mb_s",
    "parallel_unpack_mb_s",
    "unpack_speedup",
)


def validate_frame(frame, path, require_frame, min_parallel_speedup):
    """Validates the optional frame section; returns violation strings."""
    errs = []
    if frame is None:
        if require_frame:
            errs.append(f"{path}: frame section missing (--require-frame)")
        return errs
    if not isinstance(frame, dict):
        return [f"{path}: frame is not an object"]
    if frame.get("mode") not in ("smoke", "full"):
        errs.append(f"{path}: frame.mode {frame.get('mode')!r} not smoke|full")
    for field in ("workers", "cpus", "bytes"):
        v = frame.get(field)
        if not isinstance(v, int) or v <= 0:
            errs.append(f"{path}: frame.{field} = {v!r} is not a positive integer")
    for field in FRAME_RATE_FIELDS:
        v = frame.get(field)
        if not isinstance(v, (int, float)) or v <= 0:
            errs.append(f"{path}: frame.{field} = {v!r} is not a positive number")
    workers = frame.get("workers", 0)
    cpus = frame.get("cpus", 0)
    if min_parallel_speedup is not None and isinstance(workers, int) and isinstance(cpus, int):
        if cpus >= workers > 1:
            for field in ("pack_speedup", "unpack_speedup"):
                v = frame.get(field, 0)
                if not (isinstance(v, (int, float)) and v >= min_parallel_speedup):
                    errs.append(
                        f"{path}: frame.{field} {v!r} < {min_parallel_speedup} "
                        f"with {workers} workers on {cpus} cpus"
                    )
        else:
            print(
                f"{path}: note: parallel-speedup floor skipped "
                f"({cpus} cpu(s) < {workers} workers)"
            )
    return errs


LATENCY_LADDER = ("p50", "p95", "p99", "p999", "max")


def validate_service(doc, path, mode):
    """Validates a suite="service" loadgen scorecard; returns violations."""
    errs = []

    def expect(cond, msg):
        if not cond:
            errs.append(f"{path}: {msg}")

    expect(
        doc.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    expect(doc.get("bench") == "loadgen", f"bench {doc.get('bench')!r} != 'loadgen'")
    expect(doc.get("unit") == "us", f"unit {doc.get('unit')!r} != 'us'")
    expect(isinstance(doc.get("seed"), int), f"seed {doc.get('seed')!r} is not an int")
    if mode is not None:
        expect(doc.get("mode") == mode, f"mode {doc.get('mode')!r} != {mode!r}")
    for field in ("requests", "clients"):
        v = doc.get(field)
        if not isinstance(v, int) or v <= 0:
            errs.append(f"{path}: {field} = {v!r} is not a positive integer")
    expect(isinstance(doc.get("chaos"), bool), "chaos is not a boolean")

    results = doc.get("results")
    if not isinstance(results, dict):
        errs.append(f"{path}: results is not an object")
        return errs
    # The robustness contract: every request resolved exactly once, and
    # every Ok response matched the library's answer byte-for-byte.
    for field in ("lost", "duplicated", "mismatched"):
        if results.get(field) != 0:
            errs.append(f"{path}: results.{field} = {results.get(field)!r} != 0")
    ok = results.get("ok")
    if not isinstance(ok, int) or ok <= 0:
        errs.append(f"{path}: results.ok = {ok!r} is not a positive integer")
    for field in ("failed", "connection_errors"):
        v = results.get(field)
        if not isinstance(v, int) or v < 0:
            errs.append(f"{path}: results.{field} = {v!r} is not a non-negative integer")
    rejected = results.get("rejected")
    if not isinstance(rejected, dict) or any(
        not isinstance(v, int) or v < 0 for v in rejected.values()
    ):
        errs.append(f"{path}: results.rejected is not an object of non-negative counts")

    lat = doc.get("latency_us")
    if not isinstance(lat, dict):
        errs.append(f"{path}: latency_us is not an object")
        return errs
    for field in ("min", "mean") + LATENCY_LADDER:
        v = lat.get(field)
        if not isinstance(v, (int, float)) or v < 0:
            errs.append(f"{path}: latency_us.{field} = {v!r} is not a non-negative number")
    ladder = [lat.get(f, 0) for f in ("min",) + LATENCY_LADDER]
    for (lo_name, lo), (hi_name, hi) in zip(
        zip(("min",) + LATENCY_LADDER, ladder), zip(LATENCY_LADDER, ladder[1:])
    ):
        if isinstance(lo, (int, float)) and isinstance(hi, (int, float)) and lo > hi:
            errs.append(f"{path}: latency_us.{lo_name} {lo} > latency_us.{hi_name} {hi}")
    return errs


def validate(doc, path, mode, min_speedup, fast_beats_scalar,
             require_frame=False, min_parallel_speedup=None):
    """Returns a list of violation strings (empty when the doc is valid)."""
    errs = []

    def expect(cond, msg):
        if not cond:
            errs.append(f"{path}: {msg}")

    expect(
        doc.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    expect(doc.get("suite") == "codec", f"suite {doc.get('suite')!r} != 'codec'")
    expect(
        doc.get("bench") == "decode_throughput",
        f"bench {doc.get('bench')!r} != 'decode_throughput'",
    )
    expect(doc.get("unit") == "MB/s", f"unit {doc.get('unit')!r} != 'MB/s'")
    expect(doc.get("seed") == 42, f"seed {doc.get('seed')!r} != 42")
    if mode is not None:
        expect(doc.get("mode") == mode, f"mode {doc.get('mode')!r} != {mode!r}")

    errs.extend(validate_frame(doc.get("frame"), path, require_frame, min_parallel_speedup))

    rows = doc.get("profiles")
    if not isinstance(rows, list):
        errs.append(f"{path}: profiles is not a list")
        return errs
    names = {r.get("name") for r in rows}
    expect(names == PROFILES, f"profile set {sorted(map(str, names))} != expected suite")
    for r in rows:
        name = r.get("name", "<unnamed>")
        for field in ("bytes", "scalar_mb_s", "fast_mb_s", "speedup"):
            v = r.get(field)
            if not isinstance(v, (int, float)) or v <= 0:
                errs.append(f"{path}: {name}.{field} = {v!r} is not a positive number")
        if fast_beats_scalar and not r.get("fast_mb_s", 0) > r.get("scalar_mb_s", 0):
            errs.append(
                f"{path}: {name}: fast {r.get('fast_mb_s')} MB/s "
                f"<= scalar {r.get('scalar_mb_s')} MB/s"
            )
        if min_speedup is not None and not r.get("speedup", 0) >= min_speedup:
            errs.append(f"{path}: {name}: speedup {r.get('speedup')} < {min_speedup}")
    return errs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file")
    ap.add_argument("--mode", choices=["smoke", "full"])
    ap.add_argument("--min-speedup", type=float, default=None)
    ap.add_argument(
        "--fast-beats-scalar",
        action="store_true",
        help="require fast_mb_s > scalar_mb_s on every profile",
    )
    ap.add_argument(
        "--require-frame",
        action="store_true",
        help="fail when the frame section is absent",
    )
    ap.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=None,
        help="floor for frame pack/unpack speedup, enforced only when "
        "the recorded cpus >= workers",
    )
    ap.add_argument(
        "--require-service",
        action="store_true",
        help="fail unless the document is a suite=\"service\" loadgen scorecard",
    )
    args = ap.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{args.file}: {e}")

    suite = doc.get("suite")
    if args.require_service and suite != "service":
        sys.exit(f"{args.file}: suite {suite!r} != 'service' (--require-service)")

    if suite == "service":
        errs = validate_service(doc, args.file, args.mode)
        if errs:
            sys.exit("\n".join(errs))
        results = doc["results"]
        print(f"{args.file}: valid service scorecard (schema v{SCHEMA_VERSION}, "
              f"{doc['requests']} requests, {results['ok']} ok, "
              f"{results['failed']} typed failures, chaos {doc['chaos']}, "
              f"p99 {doc['latency_us']['p99']}us, mode {doc.get('mode')})")
        return

    errs = validate(doc, args.file, args.mode, args.min_speedup, args.fast_beats_scalar,
                    args.require_frame, args.min_parallel_speedup)
    if errs:
        sys.exit("\n".join(errs))
    frame = doc.get("frame")
    frame_note = (
        f", frame {frame['workers']}w/{frame['cpus']}cpu" if isinstance(frame, dict) else ""
    )
    print(f"{args.file}: valid codec scorecard (schema v{SCHEMA_VERSION}, "
          f"{len(doc['profiles'])} profiles, mode {doc.get('mode')}{frame_note})")


if __name__ == "__main__":
    main()
