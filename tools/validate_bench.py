#!/usr/bin/env python3
"""Validator for the BENCH_codec.json decode-throughput scorecard.

The scorecard is a versioned artifact (schema_version 1): CI validates
both the fresh smoke run and the checked-in full-mode numbers with this
one script, so the schema is enforced in exactly one place.

Usage:
    validate_bench.py FILE --mode smoke|full
                      [--min-speedup X] [--fast-beats-scalar]

Exit status is nonzero (with a message on stderr) on any violation.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
PROFILES = {"cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"}


def validate(doc, path, mode, min_speedup, fast_beats_scalar):
    """Returns a list of violation strings (empty when the doc is valid)."""
    errs = []

    def expect(cond, msg):
        if not cond:
            errs.append(f"{path}: {msg}")

    expect(
        doc.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    expect(doc.get("suite") == "codec", f"suite {doc.get('suite')!r} != 'codec'")
    expect(
        doc.get("bench") == "decode_throughput",
        f"bench {doc.get('bench')!r} != 'decode_throughput'",
    )
    expect(doc.get("unit") == "MB/s", f"unit {doc.get('unit')!r} != 'MB/s'")
    expect(doc.get("seed") == 42, f"seed {doc.get('seed')!r} != 42")
    if mode is not None:
        expect(doc.get("mode") == mode, f"mode {doc.get('mode')!r} != {mode!r}")

    rows = doc.get("profiles")
    if not isinstance(rows, list):
        errs.append(f"{path}: profiles is not a list")
        return errs
    names = {r.get("name") for r in rows}
    expect(names == PROFILES, f"profile set {sorted(map(str, names))} != expected suite")
    for r in rows:
        name = r.get("name", "<unnamed>")
        for field in ("bytes", "scalar_mb_s", "fast_mb_s", "speedup"):
            v = r.get(field)
            if not isinstance(v, (int, float)) or v <= 0:
                errs.append(f"{path}: {name}.{field} = {v!r} is not a positive number")
        if fast_beats_scalar and not r.get("fast_mb_s", 0) > r.get("scalar_mb_s", 0):
            errs.append(
                f"{path}: {name}: fast {r.get('fast_mb_s')} MB/s "
                f"<= scalar {r.get('scalar_mb_s')} MB/s"
            )
        if min_speedup is not None and not r.get("speedup", 0) >= min_speedup:
            errs.append(f"{path}: {name}: speedup {r.get('speedup')} < {min_speedup}")
    return errs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file")
    ap.add_argument("--mode", choices=["smoke", "full"])
    ap.add_argument("--min-speedup", type=float, default=None)
    ap.add_argument(
        "--fast-beats-scalar",
        action="store_true",
        help="require fast_mb_s > scalar_mb_s on every profile",
    )
    args = ap.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{args.file}: {e}")

    errs = validate(doc, args.file, args.mode, args.min_speedup, args.fast_beats_scalar)
    if errs:
        sys.exit("\n".join(errs))
    print(f"{args.file}: valid codec scorecard (schema v{SCHEMA_VERSION}, "
          f"{len(doc['profiles'])} profiles, mode {doc.get('mode')})")


if __name__ == "__main__":
    main()
