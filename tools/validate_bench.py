#!/usr/bin/env python3
"""Validator for the BENCH_codec.json codec scorecard.

The scorecard is a versioned artifact (schema_version 1): CI validates
both the fresh smoke run and the checked-in full-mode numbers with this
one script, so the schema is enforced in exactly one place. It carries
two sections: per-profile decode rows (owned by the decode_throughput
bench) and an optional "frame" section (owned by frame_throughput) with
serial-vs-parallel .cpk pack/unpack rates.

Usage:
    validate_bench.py FILE --mode smoke|full
                      [--min-speedup X] [--fast-beats-scalar]
                      [--require-frame] [--min-parallel-speedup X]

The parallel-speedup floor is core-count aware: the frame section records
how many CPUs the bench saw, and the floor is only enforced when
cpus >= workers — a one-CPU container cannot exhibit parallel speedup,
and pretending otherwise would just teach people to ignore the gate.

Exit status is nonzero (with a message on stderr) on any violation.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
PROFILES = {"cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"}


FRAME_RATE_FIELDS = (
    "serial_pack_mb_s",
    "parallel_pack_mb_s",
    "pack_speedup",
    "serial_unpack_mb_s",
    "parallel_unpack_mb_s",
    "unpack_speedup",
)


def validate_frame(frame, path, require_frame, min_parallel_speedup):
    """Validates the optional frame section; returns violation strings."""
    errs = []
    if frame is None:
        if require_frame:
            errs.append(f"{path}: frame section missing (--require-frame)")
        return errs
    if not isinstance(frame, dict):
        return [f"{path}: frame is not an object"]
    if frame.get("mode") not in ("smoke", "full"):
        errs.append(f"{path}: frame.mode {frame.get('mode')!r} not smoke|full")
    for field in ("workers", "cpus", "bytes"):
        v = frame.get(field)
        if not isinstance(v, int) or v <= 0:
            errs.append(f"{path}: frame.{field} = {v!r} is not a positive integer")
    for field in FRAME_RATE_FIELDS:
        v = frame.get(field)
        if not isinstance(v, (int, float)) or v <= 0:
            errs.append(f"{path}: frame.{field} = {v!r} is not a positive number")
    workers = frame.get("workers", 0)
    cpus = frame.get("cpus", 0)
    if min_parallel_speedup is not None and isinstance(workers, int) and isinstance(cpus, int):
        if cpus >= workers > 1:
            for field in ("pack_speedup", "unpack_speedup"):
                v = frame.get(field, 0)
                if not (isinstance(v, (int, float)) and v >= min_parallel_speedup):
                    errs.append(
                        f"{path}: frame.{field} {v!r} < {min_parallel_speedup} "
                        f"with {workers} workers on {cpus} cpus"
                    )
        else:
            print(
                f"{path}: note: parallel-speedup floor skipped "
                f"({cpus} cpu(s) < {workers} workers)"
            )
    return errs


def validate(doc, path, mode, min_speedup, fast_beats_scalar,
             require_frame=False, min_parallel_speedup=None):
    """Returns a list of violation strings (empty when the doc is valid)."""
    errs = []

    def expect(cond, msg):
        if not cond:
            errs.append(f"{path}: {msg}")

    expect(
        doc.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    expect(doc.get("suite") == "codec", f"suite {doc.get('suite')!r} != 'codec'")
    expect(
        doc.get("bench") == "decode_throughput",
        f"bench {doc.get('bench')!r} != 'decode_throughput'",
    )
    expect(doc.get("unit") == "MB/s", f"unit {doc.get('unit')!r} != 'MB/s'")
    expect(doc.get("seed") == 42, f"seed {doc.get('seed')!r} != 42")
    if mode is not None:
        expect(doc.get("mode") == mode, f"mode {doc.get('mode')!r} != {mode!r}")

    errs.extend(validate_frame(doc.get("frame"), path, require_frame, min_parallel_speedup))

    rows = doc.get("profiles")
    if not isinstance(rows, list):
        errs.append(f"{path}: profiles is not a list")
        return errs
    names = {r.get("name") for r in rows}
    expect(names == PROFILES, f"profile set {sorted(map(str, names))} != expected suite")
    for r in rows:
        name = r.get("name", "<unnamed>")
        for field in ("bytes", "scalar_mb_s", "fast_mb_s", "speedup"):
            v = r.get(field)
            if not isinstance(v, (int, float)) or v <= 0:
                errs.append(f"{path}: {name}.{field} = {v!r} is not a positive number")
        if fast_beats_scalar and not r.get("fast_mb_s", 0) > r.get("scalar_mb_s", 0):
            errs.append(
                f"{path}: {name}: fast {r.get('fast_mb_s')} MB/s "
                f"<= scalar {r.get('scalar_mb_s')} MB/s"
            )
        if min_speedup is not None and not r.get("speedup", 0) >= min_speedup:
            errs.append(f"{path}: {name}: speedup {r.get('speedup')} < {min_speedup}")
    return errs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file")
    ap.add_argument("--mode", choices=["smoke", "full"])
    ap.add_argument("--min-speedup", type=float, default=None)
    ap.add_argument(
        "--fast-beats-scalar",
        action="store_true",
        help="require fast_mb_s > scalar_mb_s on every profile",
    )
    ap.add_argument(
        "--require-frame",
        action="store_true",
        help="fail when the frame section is absent",
    )
    ap.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=None,
        help="floor for frame pack/unpack speedup, enforced only when "
        "the recorded cpus >= workers",
    )
    args = ap.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{args.file}: {e}")

    errs = validate(doc, args.file, args.mode, args.min_speedup, args.fast_beats_scalar,
                    args.require_frame, args.min_parallel_speedup)
    if errs:
        sys.exit("\n".join(errs))
    frame = doc.get("frame")
    frame_note = (
        f", frame {frame['workers']}w/{frame['cpus']}cpu" if isinstance(frame, dict) else ""
    )
    print(f"{args.file}: valid codec scorecard (schema v{SCHEMA_VERSION}, "
          f"{len(doc['profiles'])} profiles, mode {doc.get('mode')}{frame_note})")


if __name__ == "__main__":
    main()
