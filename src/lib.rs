//! # codepack — a reproduction of the MICRO-32 1999 CodePack evaluation
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`isa`] — the SR32 32-bit RISC instruction set (encode/decode/builder),
//! * [`synth`] — deterministic synthetic benchmark generation,
//! * [`mem`] — caches and main-memory timing models,
//! * [`obs`] — metrics, event tracing, and cycle-attribution profiling,
//! * [`core`] — the CodePack codec and decompressor timing model,
//! * [`cpu`] — functional executor and in-order / out-of-order pipelines,
//! * [`sim`] — whole-system simulations and experiment harness helpers,
//! * [`baselines`] — prior-art schemes (CCRP, instruction dictionaries,
//!   16-bit re-encoding) and software-managed decompression,
//! * [`analyze`] — sr32lint: static CFG/call-graph verification, the
//!   decode-table soundness prover, and the image/frame linters.
//!
//! ## Quickstart
//!
//! ```
//! use codepack::synth::{generate, BenchmarkProfile};
//! use codepack::core::{CodePackImage, CompressionConfig};
//! use codepack::sim::{ArchConfig, CodeModel, Simulation};
//!
//! // Generate a small synthetic workload (deterministic for a given seed).
//! let program = generate(&BenchmarkProfile::pegwit_like(), 42);
//!
//! // Compress its text section with the CodePack algorithm.
//! let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
//! assert!(image.stats().compression_ratio() < 1.0);
//!
//! // Simulate it on the paper's 4-issue machine, native vs. compressed.
//! let native = Simulation::new(ArchConfig::four_issue(), CodeModel::Native)
//!     .run(&program, 200_000);
//! let packed = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
//!     .run(&program, 200_000);
//! assert_eq!(native.retired_instructions, packed.retired_instructions);
//! ```

#![forbid(unsafe_code)]

pub use codepack_analyze as analyze;
pub use codepack_baselines as baselines;
pub use codepack_core as core;
pub use codepack_cpu as cpu;
pub use codepack_isa as isa;
pub use codepack_mem as mem;
pub use codepack_obs as obs;
pub use codepack_sim as sim;
pub use codepack_synth as synth;
