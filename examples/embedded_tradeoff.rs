//! Design-space exploration for a cost-sensitive embedded SoC: given a
//! fixed die budget, is it better to (a) double the I-cache, or (b) keep
//! the small cache and add the CodePack decompressor (which also *halves
//! the ROM footprint*)?
//!
//! This is the decision the paper's conclusions speak to: "a performance
//! benefit over native code can be realized on systems with narrow memory
//! buses or long memory latencies".
//!
//! Run with: `cargo run --release --example embedded_tradeoff`

use codepack::sim::{ArchConfig, CodeModel, Simulation, Table};
use codepack::synth::{generate, BenchmarkProfile};

fn main() {
    // An embedded controller: 1-issue core, 16-bit flash bus, slow memory.
    let base = ArchConfig::one_issue()
        .with_bus_bits(16)
        .with_memory_scale(2.0);
    let program = generate(&BenchmarkProfile::go_like(), 42);
    let insns = 400_000;

    let mut table = Table::new(
        ["Design", "I-cache", "ROM (bytes)", "IPC", "vs option A"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Embedded SoC options (1-issue, 16-bit bus, 2x memory latency)");

    // Option A: plain core, 4 KB I-cache.
    let a = Simulation::new(base.with_icache_kb(4), CodeModel::Native).run(&program, insns);
    // Option B: double the cache instead.
    let b = Simulation::new(base.with_icache_kb(8), CodeModel::Native).run(&program, insns);
    // Option C: keep 4 KB, add the CodePack decompressor (optimized).
    let c = Simulation::new(base.with_icache_kb(4), CodeModel::codepack_optimized())
        .run(&program, insns);

    let rom_native = program.text_size_bytes() as u64;
    let rom_packed = c.compression.expect("codepack").total_bytes();

    for (label, cache, rom, r) in [
        ("A: native, small cache", "4KB", rom_native, &a),
        ("B: native, 2x cache", "8KB", rom_native, &b),
        ("C: CodePack, small cache", "4KB", rom_packed, &c),
    ] {
        table.row(vec![
            label.to_string(),
            cache.to_string(),
            format!("{rom}"),
            format!("{:.3}", r.ipc()),
            format!("{:.2}x", r.speedup_over(&a)),
        ]);
    }
    table.print();

    println!();
    println!(
        "CodePack shrinks the ROM by {:.0}% and, on this memory system, runs {}.",
        (1.0 - rom_packed as f64 / rom_native as f64) * 100.0,
        if c.cycles() < b.cycles() {
            "faster than even the doubled cache"
        } else {
            "nearly as fast as the doubled cache"
        }
    );
}
