//! Quickstart: generate a workload, compress it, simulate native vs.
//! CodePack, and print the headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use codepack::sim::{ArchConfig, CodeModel, Simulation};
use codepack::synth::{generate, BenchmarkProfile};

fn main() {
    // A deterministic synthetic stand-in for the paper's `go` benchmark.
    let program = generate(&BenchmarkProfile::go_like(), 42);
    println!(
        "program `{}`: {} KB of text, entry {:#x}",
        program.name(),
        program.text_size_bytes() / 1024,
        program.entry()
    );

    let insns = 500_000;
    let arch = ArchConfig::four_issue();

    let native = Simulation::new(arch, CodeModel::Native).run(&program, insns);
    let packed = Simulation::new(arch, CodeModel::codepack_baseline()).run(&program, insns);
    let optimized = Simulation::new(arch, CodeModel::codepack_optimized()).run(&program, insns);

    // Compression must never change what the program computes.
    assert_eq!(native.state_hash, packed.state_hash);

    let stats = packed
        .compression
        .expect("CodePack runs report composition");
    println!(
        "compression ratio: {:.1}% ({} -> {} bytes)",
        stats.compression_ratio() * 100.0,
        stats.original_bytes,
        stats.total_bytes()
    );
    println!();
    println!("4-issue machine, {} instructions:", insns);
    println!("  native            IPC {:.3}", native.ipc());
    println!(
        "  CodePack baseline IPC {:.3}  (speedup {:.2}x)",
        packed.ipc(),
        packed.speedup_over(&native)
    );
    println!(
        "  CodePack optimized IPC {:.3} (speedup {:.2}x)",
        optimized.ipc(),
        optimized.speedup_over(&native)
    );
    println!();
    println!(
        "decompressor: {} misses, {} served from the output buffer, index hit rate {:.0}%",
        optimized.fetch.misses,
        optimized.fetch.buffer_hits,
        (1.0 - optimized.fetch.index_miss_ratio()) * 100.0
    );
}
