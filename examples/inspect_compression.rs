//! Inspect how CodePack encodes real instructions: dictionary heads,
//! per-component composition, and a disassembly of one block annotated
//! with each instruction's compressed size.
//!
//! Run with: `cargo run --release --example inspect_compression`

use codepack::core::{CodePackImage, CompressionConfig};
use codepack::isa::decode;
use codepack::synth::{generate, BenchmarkProfile};

fn main() {
    let program = generate(&BenchmarkProfile::pegwit_like(), 42);
    let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
    let stats = image.stats();

    println!("== {} ==", program.name());
    println!(
        "{} instructions -> {} compressed bytes (ratio {:.1}%)",
        image.len_insns(),
        stats.total_bytes(),
        stats.compression_ratio() * 100.0
    );
    println!(
        "{} blocks in {} groups; {} raw half-words; {} blocks stored raw",
        image.num_blocks(),
        image.num_groups(),
        stats.raw_halfwords,
        stats.raw_blocks
    );
    println!();

    println!("composition: {}", stats);
    println!();

    println!("high dictionary head (most frequent high half-words):");
    for (rank, value) in image.high_dict().iter().take(8) {
        println!("  rank {rank:3}: {value:#06x}");
    }
    println!("low dictionary head:");
    for (rank, value) in image.low_dict().iter().take(8) {
        println!("  rank {rank:3}: {value:#06x}");
    }
    println!(
        "dictionary sizes: high {} entries, low {} entries ({} bytes total)",
        image.high_dict().len(),
        image.low_dict().len(),
        stats.dictionary_bytes
    );
    println!();

    // Annotated disassembly of a *compressed* block (some blocks hold rare
    // constants and fall back to raw storage; skip those).
    let block = (0..image.num_blocks())
        .find(|&b| image.block_info(b).byte_len < 60)
        .expect("most blocks compress");
    let info = image.block_info(block);
    let words = image.decompress_block(block).expect("block decodes");
    println!(
        "block {block} ({} compressed bytes for 64 native bytes):",
        info.byte_len
    );
    for (j, &word) in words.iter().enumerate() {
        let bits = info.cum_bits[j + 1] - info.cum_bits[j];
        let text = decode(word).map_or_else(|_| format!(".word {word:#010x}"), |i| i.to_string());
        println!("  [{bits:2} bits] {text}");
    }
}
