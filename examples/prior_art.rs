//! Prior art in one view: compress the same program with every scheme the
//! paper's background section discusses, then show why CodePack's 16-bit
//! symbols beat CCRP's byte-granularity Huffman on the miss path.
//!
//! Run with: `cargo run --release --example prior_art`

use codepack::baselines::{estimate_thumb, CcrpConfig, CcrpFetch, CcrpImage, InsnDictImage};
use codepack::core::{CodePackFetch, DecompressorConfig, FetchEngine};
use codepack::mem::MemoryTiming;
use codepack::sim::Table;
use codepack::synth::{generate, BenchmarkProfile};
use std::sync::Arc;

fn main() {
    let program = generate(&BenchmarkProfile::go_like(), 42);
    let text = program.text_words();

    // --- size ---
    let cp = codepack::core::CodePackImage::compress(
        text,
        &codepack::core::CompressionConfig::default(),
    );
    let ccrp = CcrpImage::compress(text, 32);
    let dict = InsnDictImage::compress(text);
    let thumb = estimate_thumb(text);

    let mut t = Table::new(["Scheme", "Compressed", "Ratio"].map(String::from).to_vec())
        .with_title(format!("go ({} bytes of text)", program.text_size_bytes()));
    t.row(vec![
        "CodePack (half-word dicts)".into(),
        format!("{}", cp.stats().total_bytes()),
        format!("{:.1}%", cp.stats().compression_ratio() * 100.0),
    ]);
    t.row(vec![
        "CCRP (Huffman bytes/line)".into(),
        format!("{}", ccrp.stats().total_bytes()),
        format!("{:.1}%", ccrp.stats().compression_ratio() * 100.0),
    ]);
    t.row(vec![
        "Whole-insn dictionary".into(),
        format!("{}", dict.stats().total_bytes()),
        format!("{:.1}%", dict.stats().compression_ratio() * 100.0),
    ]);
    t.row(vec![
        "Thumb-style 16-bit (est.)".into(),
        format!("{}", thumb.reencoded_bytes()),
        format!("{:.1}%", thumb.size_ratio() * 100.0),
    ]);
    t.print();
    println!();

    // --- decode latency on one miss ---
    // Same miss (5th instruction of a cache line), serviced by each
    // hardware decompressor.
    let timing = MemoryTiming::default();
    let mut cp_fetch = CodePackFetch::new(
        Arc::new(cp),
        timing,
        DecompressorConfig::baseline(),
        codepack::isa::TEXT_BASE,
    );
    let mut ccrp_fetch = CcrpFetch::new(
        Arc::new(ccrp),
        timing,
        CcrpConfig::default(),
        codepack::isa::TEXT_BASE,
    );
    let addr = codepack::isa::TEXT_BASE + 4 * 4;
    let cp_svc = cp_fetch.service_miss(addr, 32);
    let ccrp_svc = ccrp_fetch.service_miss(addr, 32);
    println!("one L1 miss on the 5th instruction of a line:");
    println!(
        "  CodePack: critical ready at t={} (2 half-word lookups/insn)",
        cp_svc.critical_ready
    );
    println!(
        "  CCRP:     critical ready at t={} (4 Huffman symbols/insn)",
        ccrp_svc.critical_ready
    );
    println!();
    println!(
        "CodePack's coarser symbols serve this miss {:.1}x faster — the \
         serial-decode cost the paper attributes to CCRP's 4 symbols per \
         instruction.",
        ccrp_svc.critical_ready as f64 / cp_svc.critical_ready.max(1) as f64
    );
}
