//! Bring your own program: write SR32 assembly with the label-aware
//! [`Assembler`], run it functionally, then compare native and CodePack
//! fetch timing on it.
//!
//! The kernel is a checksum loop over a byte buffer — the kind of tight
//! embedded code CodePack was designed around.
//!
//! Run with: `cargo run --release --example custom_workload`

use codepack::cpu::Machine;
use codepack::isa::{Assembler, Instruction, Reg, DATA_BASE};
use codepack::sim::{ArchConfig, CodeModel, Simulation};

fn main() {
    let mut a = Assembler::new();

    // ~4 KB of data to checksum. (An odd length: power-of-two-sized
    // arithmetic progressions checksum to zero under mod-256 folding.)
    let data: Vec<u8> = (0..4093u32).map(|i| (i * 31 + 7) as u8).collect();
    a.data(&data);

    // t0 = pointer, t1 = remaining, t2 = accumulator (simple Fletcher-ish).
    let top = a.new_label();
    a.li(Reg::T0, DATA_BASE as i32);
    a.li(Reg::T1, data.len() as i32);
    a.li(Reg::T2, 0);
    a.li(Reg::T3, 0);
    a.bind(top);
    a.push(Instruction::Lbu {
        rt: Reg::T4,
        base: Reg::T0,
        offset: 0,
    });
    a.push(Instruction::Addu {
        rd: Reg::T2,
        rs: Reg::T2,
        rt: Reg::T4,
    });
    a.push(Instruction::Addu {
        rd: Reg::T3,
        rs: Reg::T3,
        rt: Reg::T2,
    });
    a.push(Instruction::Andi {
        rt: Reg::T2,
        rs: Reg::T2,
        imm: 0xff,
    });
    a.push(Instruction::Andi {
        rt: Reg::T3,
        rs: Reg::T3,
        imm: 0xff,
    });
    a.push(Instruction::Addiu {
        rt: Reg::T0,
        rs: Reg::T0,
        imm: 1,
    });
    a.push(Instruction::Addiu {
        rt: Reg::T1,
        rs: Reg::T1,
        imm: -1,
    });
    a.bgtz(Reg::T1, top);
    // result = (t3 << 8) | t2 in $v1
    a.push(Instruction::Sll {
        rd: Reg::V1,
        rt: Reg::T3,
        shamt: 8,
    });
    a.push(Instruction::Or {
        rd: Reg::V1,
        rs: Reg::V1,
        rt: Reg::T2,
    });
    a.halt();

    let program = a.finish("checksum").expect("all labels bound");

    // Functional run first: what does it compute?
    let mut machine = Machine::load(&program);
    machine.run(u64::MAX).expect("program is well-formed");
    let checksum = machine.reg(Reg::V1);
    println!("checksum of {} bytes: {checksum:#06x}", data.len());
    assert_eq!(checksum, 0x99a5, "independently computed reference value");

    // Timing: native vs. CodePack on the 1-issue embedded machine.
    let arch = ArchConfig::one_issue();
    let native = Simulation::new(arch, CodeModel::Native).run(&program, u64::MAX);
    let packed = Simulation::new(arch, CodeModel::codepack_optimized()).run(&program, u64::MAX);

    // The simulated machine computed the same thing.
    assert_eq!(native.state_hash, packed.state_hash);

    println!(
        "native:   {} cycles (IPC {:.3})",
        native.cycles(),
        native.ipc()
    );
    println!(
        "codepack: {} cycles (IPC {:.3}), text ratio {:.1}%",
        packed.cycles(),
        packed.ipc(),
        packed.compression.unwrap().compression_ratio() * 100.0
    );
    println!(
        "tight loops hide decompression: {:.1}% cycle overhead",
        (packed.cycles() as f64 / native.cycles() as f64 - 1.0) * 100.0
    );
}
