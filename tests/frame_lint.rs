//! Static-vs-dynamic differential for the `.cpk` frame linter.
//!
//! The linter's core claim is that its one-pass static walk of a frame
//! is *semantically equivalent* to actually unpacking it: on every
//! well-formed frame the statically decoded words are byte-identical to
//! [`unpack_frame`], and the walk is clean exactly when the parser
//! accepts. Pinned here across all six benchmark profiles, three seeds,
//! and all three integrity modes, plus targeted damage cases showing
//! the two sides also *reject* together — with the linter naming the
//! damaged group while the parser only returns the first error.

use codepack::analyze::{check_frame, lint_frame, LintReport};
use codepack::core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};
use codepack::mem::StreamIntegrity;
use codepack::synth::{generate, BenchmarkProfile};

fn profiles() -> Vec<(&'static str, BenchmarkProfile)> {
    vec![
        ("cc1", BenchmarkProfile::cc1_like()),
        ("go", BenchmarkProfile::go_like()),
        ("mpeg2enc", BenchmarkProfile::mpeg2enc_like()),
        ("pegwit", BenchmarkProfile::pegwit_like()),
        ("perl", BenchmarkProfile::perl_like()),
        ("vortex", BenchmarkProfile::vortex_like()),
    ]
}

const INTEGRITIES: [StreamIntegrity; 3] = [
    StreamIntegrity::None,
    StreamIntegrity::Parity,
    StreamIntegrity::Crc32,
];

#[test]
fn static_walk_matches_unpack_across_profiles_seeds_and_integrity_modes() {
    for (name, profile) in profiles() {
        for seed in [3u64, 17, 42] {
            let text = generate(&profile, seed).text_words().to_vec();
            for integrity in INTEGRITIES {
                let frame = pack_frame(
                    &text,
                    &PackOptions {
                        integrity,
                        ..PackOptions::default()
                    },
                );
                let mut report = LintReport::new(name);
                let walk = check_frame(&frame, &mut report);
                assert!(
                    report.is_clean(),
                    "{name}/{seed}/{}: {}",
                    integrity.as_str(),
                    report.render()
                );
                assert!(walk.complete);
                assert_eq!(walk.integrity, integrity);
                assert_eq!(walk.content_size, 4 * text.len() as u64);

                let unpacked = unpack_frame(&frame, &UnpackOptions::default())
                    .expect("well-formed frame unpacks");
                assert_eq!(
                    walk.words,
                    unpacked,
                    "{name}/{seed}/{}: static walk diverged from unpack_frame",
                    integrity.as_str()
                );
                assert_eq!(walk.words, text, "{name}/{seed}: round trip broke");
            }
        }
    }
}

/// Byte offset of the first group's first payload byte in a frame.
fn first_payload_at(frame: &[u8]) -> usize {
    let hi = u16::from_le_bytes([frame[16], frame[17]]) as usize;
    let lo = u16::from_le_bytes([frame[18], frame[19]]) as usize;
    // fixed header (20) + dictionaries + header CRC (4)
    //   + payload_len (4) + first_len (2)
    20 + 2 * (hi + lo) + 4 + 4 + 2
}

#[test]
fn linter_and_parser_reject_the_same_damaged_frames() {
    let text = generate(&BenchmarkProfile::pegwit_like(), 42)
        .text_words()
        .to_vec();
    let frame = pack_frame(
        &text,
        &PackOptions {
            integrity: StreamIntegrity::Crc32,
            ..PackOptions::default()
        },
    );

    // A flipped payload byte: parser errors, linter errors *and* names
    // the group.
    let mut torn = frame.clone();
    torn[first_payload_at(&frame)] ^= 0x01;
    assert!(unpack_frame(&torn, &UnpackOptions::default()).is_err());
    let report = lint_frame(&torn, "torn");
    assert!(!report.is_clean());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.check == "frame-integrity" && d.message.contains("group 0")),
        "{}",
        report.render()
    );

    // Truncations at assorted depths: both sides must reject every one.
    for cut in [2, 10, frame.len() / 3, frame.len() / 2, frame.len() - 1] {
        assert!(unpack_frame(&frame[..cut], &UnpackOptions::default()).is_err());
        assert!(!lint_frame(&frame[..cut], "cut").is_clean(), "cut at {cut}");
    }

    // Header damage under the header CRC.
    let mut bad = frame.clone();
    bad[12] ^= 0x10; // content_size
    assert!(unpack_frame(&bad, &UnpackOptions::default()).is_err());
    assert!(!lint_frame(&bad, "hdr").is_clean());

    // Trailing junk.
    let mut long = frame.clone();
    long.push(0);
    assert!(unpack_frame(&long, &UnpackOptions::default()).is_err());
    assert!(!lint_frame(&long, "junk").is_clean());

    // And the clean frame still passes both, so the negatives above are
    // meaningful.
    assert!(unpack_frame(&frame, &UnpackOptions::default()).is_ok());
    assert!(lint_frame(&frame, "clean").is_clean());
}
