//! The paper's qualitative results, asserted as tests. These are the
//! claims a reproduction must uphold — who wins, in which regime — rather
//! than exact numbers.

use codepack::core::DecompressorConfig;
use codepack::sim::{ArchConfig, CodeModel, SimResult, Simulation};
use codepack::synth::{generate, BenchmarkProfile};

const RUN: u64 = 120_000;

fn run(program: &codepack::isa::Program, arch: ArchConfig, model: CodeModel) -> SimResult {
    Simulation::new(arch, model).run(program, RUN)
}

#[test]
fn compression_ratio_in_the_codepack_band() {
    // Paper Table 3: 55%–64% across the suite.
    for profile in BenchmarkProfile::suite() {
        let program = generate(&profile, 42);
        let r = run(
            &program,
            ArchConfig::four_issue(),
            CodeModel::codepack_baseline(),
        );
        let ratio = r.compression.unwrap().compression_ratio();
        assert!(
            (0.50..0.70).contains(&ratio),
            "{}: ratio {:.3} outside the CodePack band",
            profile.name,
            ratio
        );
    }
}

#[test]
fn baseline_codepack_loses_to_native_on_miss_heavy_code() {
    // Paper §5.2: performance loss under 18% on the 4-issue machine, and
    // CodePack never beats native without the optimizations on the
    // baseline memory system.
    let program = generate(&BenchmarkProfile::cc1_like(), 42);
    let arch = ArchConfig::four_issue();
    let native = run(&program, arch, CodeModel::Native);
    let packed = run(&program, arch, CodeModel::codepack_baseline());
    let speedup = packed.speedup_over(&native);
    assert!(
        speedup < 1.0,
        "baseline CodePack should lose slightly, got {speedup:.3}"
    );
    assert!(speedup > 0.80, "paper: loss under ~18%, got {speedup:.3}");
}

#[test]
fn optimizations_recover_and_often_beat_native() {
    // Paper Table 9: with both optimizations, go/perl/vortex see a slight
    // speedup over native.
    let arch = ArchConfig::four_issue();
    for profile in [BenchmarkProfile::go_like(), BenchmarkProfile::perl_like()] {
        let program = generate(&profile, 42);
        let native = run(&program, arch, CodeModel::Native);
        let opt = run(&program, arch, CodeModel::codepack_optimized());
        assert!(
            opt.speedup_over(&native) > 0.98,
            "{}: optimized CodePack should at least match native",
            profile.name
        );
    }
}

#[test]
fn loop_benchmarks_are_insensitive_to_compression() {
    // Paper §5.2: mpeg2enc and pegwit "do not produce enough cache misses
    // to produce a significant performance difference".
    let arch = ArchConfig::four_issue();
    for profile in [
        BenchmarkProfile::mpeg2enc_like(),
        BenchmarkProfile::pegwit_like(),
    ] {
        let program = generate(&profile, 42);
        let native = run(&program, arch, CodeModel::Native);
        let packed = run(&program, arch, CodeModel::codepack_baseline());
        let speedup = packed.speedup_over(&native);
        assert!(
            (0.99..=1.01).contains(&speedup),
            "{}: expected ~no change, got {speedup:.4}",
            profile.name
        );
    }
}

#[test]
fn each_optimization_helps_and_combination_helps_most() {
    // Paper Table 9 structure.
    let program = generate(&BenchmarkProfile::vortex_like(), 42);
    let arch = ArchConfig::four_issue();
    let native = run(&program, arch, CodeModel::Native);
    let speedup = |cfg: DecompressorConfig| {
        run(&program, arch, CodeModel::codepack_with(cfg)).speedup_over(&native)
    };
    let base = speedup(DecompressorConfig::baseline());
    let index = speedup(DecompressorConfig::index_cache_only());
    let decode = speedup(DecompressorConfig::decoders(2));
    let all = speedup(DecompressorConfig::optimized());
    assert!(
        index > base,
        "index cache must help: {index:.3} vs {base:.3}"
    );
    assert!(
        decode > base,
        "wider decode must help: {decode:.3} vs {base:.3}"
    );
    assert!(all >= index.max(decode) * 0.995, "combining must not hurt");
    // Paper §5.3: the index cache matters more than decode width.
    assert!(
        index > decode,
        "index cache is the bigger lever: {index:.3} vs {decode:.3}"
    );
}

#[test]
fn small_caches_favor_optimized_codepack() {
    // Paper Table 10: with a 1 KB I-cache the optimized decompressor beats
    // native substantially; by 64 KB both converge to ~1.0. vortex has the
    // largest working set in the suite, so the small cache hurts native most.
    let program = generate(&BenchmarkProfile::vortex_like(), 42);
    let small = ArchConfig::four_issue().with_icache_kb(1);
    let big = ArchConfig::four_issue().with_icache_kb(64);

    let native_small = run(&program, small, CodeModel::Native);
    let opt_small = run(&program, small, CodeModel::codepack_optimized());
    let gain_small = opt_small.speedup_over(&native_small);
    assert!(
        gain_small > 1.05,
        "1KB cache: optimized should win clearly, got {gain_small:.3}"
    );

    let native_big = run(&program, big, CodeModel::Native);
    let opt_big = run(&program, big, CodeModel::codepack_optimized());
    let gain_big = opt_big.speedup_over(&native_big);
    assert!(
        (0.97..1.08).contains(&gain_big),
        "64KB cache: both should converge, got {gain_big:.3}"
    );
    assert!(gain_small > gain_big, "the win shrinks as the cache grows");
}

#[test]
fn narrow_buses_favor_compression_wide_buses_favor_native() {
    // Paper Table 11.
    let program = generate(&BenchmarkProfile::cc1_like(), 42);
    let narrow = ArchConfig::four_issue().with_bus_bits(16);
    let wide = ArchConfig::four_issue().with_bus_bits(128);

    let gain_narrow = run(&program, narrow, CodeModel::codepack_optimized()).speedup_over(&run(
        &program,
        narrow,
        CodeModel::Native,
    ));
    let gain_wide = run(&program, wide, CodeModel::codepack_optimized()).speedup_over(&run(
        &program,
        wide,
        CodeModel::Native,
    ));
    assert!(
        gain_narrow > 1.1,
        "16-bit bus: compression should win big, got {gain_narrow:.3}"
    );
    assert!(
        gain_narrow > gain_wide,
        "the advantage must shrink with bus width"
    );
}

#[test]
fn long_memory_latency_favors_the_optimized_decompressor() {
    // Paper Table 12.
    let program = generate(&BenchmarkProfile::perl_like(), 42);
    let fast = ArchConfig::four_issue().with_memory_scale(0.5);
    let slow = ArchConfig::four_issue().with_memory_scale(8.0);

    let gain_fast = run(&program, fast, CodeModel::codepack_optimized()).speedup_over(&run(
        &program,
        fast,
        CodeModel::Native,
    ));
    let gain_slow = run(&program, slow, CodeModel::codepack_optimized()).speedup_over(&run(
        &program,
        slow,
        CodeModel::Native,
    ));
    assert!(
        gain_slow > gain_fast,
        "slower memory must widen the gap: {gain_slow:.3} vs {gain_fast:.3}"
    );
    assert!(
        gain_slow > 1.0,
        "8x latency: optimized CodePack should beat native"
    );
}

#[test]
fn wider_issue_needs_bigger_caches_for_same_miss_rate() {
    // The paper scales cache size with issue width so CodePack "behaves
    // similarly across each of the baseline architectures".
    let program = generate(&BenchmarkProfile::go_like(), 42);
    let r1 = run(
        &program,
        ArchConfig::one_issue(),
        CodeModel::codepack_baseline(),
    );
    let r8 = run(
        &program,
        ArchConfig::eight_issue(),
        CodeModel::codepack_baseline(),
    );
    // Same program, bigger cache on the 8-issue machine: fewer misses.
    assert!(r8.imiss_per_insn() < r1.imiss_per_insn());
}

#[test]
fn an_l2_damps_both_the_penalty_and_the_benefit() {
    // Beyond the paper: with a unified L2 in front of the decompressor,
    // most L1 misses never reach it, so the native/compressed gap narrows
    // from both sides.
    let program = generate(&BenchmarkProfile::cc1_like(), 42);
    let flat = ArchConfig::four_issue();
    let l2 = ArchConfig::four_issue().with_l2_kb(256);

    let gap = |arch: ArchConfig| {
        let native = run(&program, arch, CodeModel::Native);
        let packed = run(&program, arch, CodeModel::codepack_baseline());
        (packed.speedup_over(&native) - 1.0).abs()
    };
    let gap_flat = gap(flat);
    let gap_l2 = gap(l2);
    assert!(
        gap_l2 < gap_flat,
        "the L2 must damp the compression effect: {gap_l2:.3} vs {gap_flat:.3}"
    );

    // And the L2 machine is simply faster in absolute terms.
    let native_flat = run(&program, flat, CodeModel::Native);
    let native_l2 = run(&program, l2, CodeModel::Native);
    assert!(native_l2.cycles() < native_flat.cycles());
}
