//! Failure injection: corrupt inputs must surface as typed errors, never
//! as panics or silent wrong answers.

use std::path::PathBuf;

use codepack::core::{CodePackImage, CompressionConfig, DecompressError};
use codepack::cpu::{ExecError, Machine};
use codepack::isa::{Assembler, Instruction, Reg};
use codepack::sim::{
    run_matrix, run_matrix_with, ArchConfig, CellOutcome, CodeModel, FaultKind, InjectedFault,
    MatrixOptions, MatrixSpec, Simulation,
};
use codepack::synth::{generate, BenchmarkProfile};

fn compressible_text() -> Vec<u32> {
    generate(&BenchmarkProfile::pegwit_like(), 9)
        .text_words()
        .to_vec()
}

#[test]
fn corrupted_streams_error_or_misdecode_but_never_panic() {
    let text = compressible_text();
    let clean = CodePackImage::compress(&text, &CompressionConfig::default());
    // Flip bytes at many positions; every decode attempt must return
    // Ok(something) or Err(DecompressError) — panics fail the test harness.
    for at in (0..clean.compressed_bytes().len()).step_by(97) {
        let corrupt = clean.clone().with_corrupted_bytes(at, 0xff).unwrap();
        for block in 0..corrupt.num_blocks().min(64) {
            let _ = corrupt.decompress_block(block);
        }
    }
}

#[test]
fn truncation_error_carries_position() {
    // A reader over an empty slice must report truncation immediately.
    let mut reader = codepack::core::BitReader::new(&[]);
    match reader.read(2) {
        Err(DecompressError::Truncated { at_bit }) => assert_eq!(at_bit, 0),
        other => panic!("expected truncation, got {other:?}"),
    }
}

#[test]
fn illegal_instruction_surfaces_through_simulation() {
    let mut a = Assembler::new();
    a.push(Instruction::NOP);
    a.push_raw(0xffff_ffff); // not a valid SR32 encoding
    a.halt();
    let program = a.finish("bad").unwrap();
    let err = Simulation::new(ArchConfig::four_issue(), CodeModel::Native)
        .try_run(&program, 1_000)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::IllegalInstruction { pc, .. } if pc == codepack::isa::TEXT_BASE + 4)
    );
}

#[test]
fn wild_jump_is_a_clean_trap() {
    let mut a = Assembler::new();
    a.li(Reg::T0, 0x0000_1000); // below TEXT_BASE
    a.push(Instruction::Jr { rs: Reg::T0 });
    let program = a.finish("wild").unwrap();
    let err = Simulation::new(ArchConfig::one_issue(), CodeModel::codepack_baseline())
        .try_run(&program, 1_000)
        .unwrap_err();
    assert!(matches!(err, ExecError::PcOutOfText { .. }));
}

#[test]
fn unknown_syscall_reports_code() {
    let mut a = Assembler::new();
    a.li(Reg::V0, 99);
    a.push(Instruction::Syscall);
    let program = a.finish("sys").unwrap();
    let mut m = Machine::load(&program);
    m.step().unwrap();
    match m.step() {
        Err(ExecError::UnknownSyscall { code, .. }) => assert_eq!(code, 99),
        other => panic!("expected unknown syscall, got {other:?}"),
    }
}

// --- Matrix fault tolerance: a failing cell degrades the report, never
// --- the run, and the crash-safe journal reproduces it byte-for-byte.

fn matrix_spec() -> MatrixSpec {
    MatrixSpec::new(11, 20_000)
        .with_profiles(vec![BenchmarkProfile::pegwit_like()])
        .with_archs(vec![ArchConfig::one_issue(), ArchConfig::four_issue()])
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "codepack-failure-injection-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trapping_cell_degrades_the_report_and_leaves_the_rest_byte_identical() {
    let clean = run_matrix(&matrix_spec(), 2);
    let spec = matrix_spec().with_fault(InjectedFault::permanent(3, FaultKind::Trap));
    let report = run_matrix(&spec, 2);

    // The cube completed: same shape, the faulty cell carries the error.
    assert_eq!(report.cells.len(), clean.cells.len());
    match &report.cells[3].outcome {
        CellOutcome::Trapped { error } => assert!(error.contains("injected trap")),
        other => panic!("expected trapped, got {other:?}"),
    }
    assert!(report.cells[3].result.is_none());

    // Every other cell is byte-identical to the clean run.
    for (i, (a, b)) in clean.cells.iter().zip(&report.cells).enumerate() {
        if i == 3 {
            continue;
        }
        assert!(b.outcome.is_ok(), "cell {i} unaffected by cell 3's fault");
        assert_eq!(
            a.expect_ok().state_hash,
            b.expect_ok().state_hash,
            "cell {i} diverged"
        );
        assert_eq!(a.expect_ok().cycles(), b.expect_ok().cycles());
    }
    let s = report.summary();
    assert_eq!((s.ok, s.trapped), (clean.cells.len() - 1, 1));
}

#[test]
fn journal_resume_reproduces_a_partially_failed_sweep() {
    let spec = matrix_spec()
        .with_retries(0)
        .with_fault(InjectedFault::permanent(1, FaultKind::Panic));

    // Uninterrupted journaled run (one trapping cell included).
    let clean_dir = scratch_dir("clean");
    let clean = run_matrix_with(&spec, &MatrixOptions::new(2).with_journal(&clean_dir)).unwrap();
    assert_eq!(clean.summary().trapped, 1);

    // Simulate a kill mid-sweep: keep the header and the first three
    // records, leaving the fourth torn in half (no trailing newline).
    let journal = clean_dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + spec.len(), "header + one record per cell");
    let resumed_dir = scratch_dir("resumed");
    std::fs::create_dir_all(&resumed_dir).unwrap();
    std::fs::write(
        resumed_dir.join("journal.jsonl"),
        format!(
            "{}\n{}",
            lines[..4].join("\n"),
            &lines[4][..lines[4].len() / 2]
        ),
    )
    .unwrap();

    let resumed = run_matrix_with(
        &spec,
        &MatrixOptions::new(3)
            .with_journal(&resumed_dir)
            .resuming(true),
    )
    .unwrap();

    assert_eq!(
        clean.to_json(),
        resumed.to_json(),
        "resume must reproduce the uninterrupted report byte-for-byte"
    );
    // The rendered table matches too, except the diagnostic footer line,
    // whose "resumed" count intentionally reflects this run, not the cube.
    let body = |s: String| {
        s.lines()
            .count()
            .checked_sub(1)
            .map(|n| s.lines().take(n).collect::<Vec<_>>().join("\n"))
    };
    assert_eq!(body(clean.render()), body(resumed.render()));
    // Only the journaled-ok prefix was restored; failed and torn cells re-ran.
    assert!(resumed.summary().resumed >= 1);
    assert!(resumed.cells.iter().any(|c| !c.resumed));

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

#[test]
fn resume_rejects_a_journal_from_a_different_cube() {
    let dir = scratch_dir("mismatch");
    run_matrix_with(&matrix_spec(), &MatrixOptions::new(1).with_journal(&dir)).unwrap();

    // Same journal, different instruction budget: refuse to mix them.
    let other = matrix_spec();
    let other = MatrixSpec {
        max_insns: other.max_insns + 1,
        ..other
    };
    let err = run_matrix_with(
        &other,
        &MatrixOptions::new(1).with_journal(&dir).resuming(true),
    )
    .unwrap_err();
    assert!(
        err.contains("different cube"),
        "mismatch must name the cause: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn break_instruction_traps() {
    let mut a = Assembler::new();
    a.push(Instruction::Break);
    let program = a.finish("brk").unwrap();
    let err = Simulation::new(ArchConfig::four_issue(), CodeModel::Native)
        .try_run(&program, 10)
        .unwrap_err();
    assert!(matches!(err, ExecError::Break { .. }));
    assert!(err.to_string().contains("break"));
}
