//! Failure injection: corrupt inputs must surface as typed errors, never
//! as panics or silent wrong answers.

use codepack::core::{CodePackImage, CompressionConfig, DecompressError};
use codepack::cpu::{ExecError, Machine};
use codepack::isa::{Assembler, Instruction, Reg};
use codepack::sim::{ArchConfig, CodeModel, Simulation};
use codepack::synth::{generate, BenchmarkProfile};

fn compressible_text() -> Vec<u32> {
    generate(&BenchmarkProfile::pegwit_like(), 9)
        .text_words()
        .to_vec()
}

#[test]
fn corrupted_streams_error_or_misdecode_but_never_panic() {
    let text = compressible_text();
    let clean = CodePackImage::compress(&text, &CompressionConfig::default());
    // Flip bytes at many positions; every decode attempt must return
    // Ok(something) or Err(DecompressError) — panics fail the test harness.
    for at in (0..clean.compressed_bytes().len()).step_by(97) {
        let corrupt = clean.clone().with_corrupted_bytes(at, 0xff);
        for block in 0..corrupt.num_blocks().min(64) {
            let _ = corrupt.decompress_block(block);
        }
    }
}

#[test]
fn truncation_error_carries_position() {
    // A reader over an empty slice must report truncation immediately.
    let mut reader = codepack::core::BitReader::new(&[]);
    match reader.read(2) {
        Err(DecompressError::Truncated { at_bit }) => assert_eq!(at_bit, 0),
        other => panic!("expected truncation, got {other:?}"),
    }
}

#[test]
fn illegal_instruction_surfaces_through_simulation() {
    let mut a = Assembler::new();
    a.push(Instruction::NOP);
    a.push_raw(0xffff_ffff); // not a valid SR32 encoding
    a.halt();
    let program = a.finish("bad").unwrap();
    let err = Simulation::new(ArchConfig::four_issue(), CodeModel::Native)
        .try_run(&program, 1_000)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::IllegalInstruction { pc, .. } if pc == codepack::isa::TEXT_BASE + 4)
    );
}

#[test]
fn wild_jump_is_a_clean_trap() {
    let mut a = Assembler::new();
    a.li(Reg::T0, 0x0000_1000); // below TEXT_BASE
    a.push(Instruction::Jr { rs: Reg::T0 });
    let program = a.finish("wild").unwrap();
    let err = Simulation::new(ArchConfig::one_issue(), CodeModel::codepack_baseline())
        .try_run(&program, 1_000)
        .unwrap_err();
    assert!(matches!(err, ExecError::PcOutOfText { .. }));
}

#[test]
fn unknown_syscall_reports_code() {
    let mut a = Assembler::new();
    a.li(Reg::V0, 99);
    a.push(Instruction::Syscall);
    let program = a.finish("sys").unwrap();
    let mut m = Machine::load(&program);
    m.step().unwrap();
    match m.step() {
        Err(ExecError::UnknownSyscall { code, .. }) => assert_eq!(code, 99),
        other => panic!("expected unknown syscall, got {other:?}"),
    }
}

#[test]
fn break_instruction_traps() {
    let mut a = Assembler::new();
    a.push(Instruction::Break);
    let program = a.finish("brk").unwrap();
    let err = Simulation::new(ArchConfig::four_issue(), CodeModel::Native)
        .try_run(&program, 10)
        .unwrap_err();
    assert!(matches!(err, ExecError::Break { .. }));
    assert!(err.to_string().contains("break"));
}
