//! Property tests over the CodePack codec at the whole-image level.

use codepack::core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};
use codepack::core::{CodePackImage, CompressionConfig, BLOCKS_PER_GROUP, GROUP_INSNS};
use codepack_testkit::forall;
use codepack_testkit::prop::{gen, Gen};

/// Instruction-word generator with a realistic mixture: many repeats of a
/// few values, plus arbitrary noise words.
fn arb_text() -> Gen<Vec<u32>> {
    let common = gen::one_of(vec![
        gen::just(0x2402_0001u32),
        gen::just(0x8c62_0004u32),
        gen::just(0xafbf_0014u32),
        gen::just(0x0000_0000u32),
        gen::just(0x03e0_0008u32),
    ]);
    let word = gen::weighted(vec![(4, common), (1, gen::any_int::<u32>())]);
    gen::vec_of(word, 1..400)
}

fn arb_config() -> Gen<CompressionConfig> {
    gen::bools()
        .zip(gen::bools())
        .zip(gen::ints(1u32..4))
        .map(|((raw, pin), min)| CompressionConfig {
            raw_block_fallback: raw,
            pin_low_zero: pin,
            dict_min_count: min,
        })
}

/// Lossless: decompress(compress(text)) == text for any text and any
/// codec configuration.
#[test]
fn roundtrip_any_text_any_config() {
    forall!(cases = 64, (arb_text(), arb_config()), |text, config| {
        let image = CodePackImage::compress(&text, &config);
        assert_eq!(image.decompress_all().unwrap(), text);
    });
}

/// Padding/capacity math for every input length in `0..=4*GROUP_INSNS`
/// through both decode backends: the `div_ceil` + `chunks_exact` +
/// `truncate(n_insns)` chain in `CodePackImage::compress` must produce a
/// whole number of groups, two blocks per group, and an exact round trip
/// for lengths that end anywhere inside a block, a group, or exactly on
/// either boundary. Length 0 is the frame layer's job — `compress` rejects
/// it by documented contract (see `empty_text_panics`) while an empty
/// `.cpk` frame round-trips.
#[test]
fn every_length_to_four_groups_round_trips_both_backends() {
    let max = 4 * GROUP_INSNS as usize;
    forall!(
        cases = 12,
        (
            gen::vec_of(gen::any_int::<u32>(), max..max + 1),
            arb_config()
        ),
        |text, config| {
            for n in 0..=max {
                let prefix = &text[..n];
                if n == 0 {
                    let opts = PackOptions {
                        compression: config,
                        ..PackOptions::default()
                    };
                    let frame = pack_frame(prefix, &opts);
                    assert!(unpack_frame(&frame, &UnpackOptions::default())
                        .unwrap()
                        .is_empty());
                    continue;
                }
                let image = CodePackImage::compress(prefix, &config);
                let groups = n.div_ceil(GROUP_INSNS as usize) as u32;
                assert_eq!(image.num_groups(), groups, "length {n}");
                assert_eq!(image.num_blocks(), groups * BLOCKS_PER_GROUP, "length {n}");
                assert_eq!(image.len_insns() as usize, n);
                assert_eq!(
                    image.decompress_all().unwrap(),
                    prefix,
                    "scalar, length {n}"
                );
                assert_eq!(
                    image.decompress_all_fast().unwrap(),
                    prefix,
                    "fast, length {n}"
                );
            }
        }
    );
}

/// The composition accounting always partitions the image exactly.
#[test]
fn composition_partitions_image() {
    forall!(cases = 64, (arb_text()), |text| {
        let image = CodePackImage::compress(&text, &CompressionConfig::default());
        let s = image.stats();
        let sum: f64 = s.table4_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(
            s.total_bytes(),
            s.index_table_bytes + s.dictionary_bytes + image.compressed_bytes().len() as u64
        );
    });
}

/// With the raw-block fallback on, expansion is bounded: a block never
/// exceeds its native 64 bytes by more than the flag byte, so the whole
/// stream stays within ~2% of native plus table overheads.
#[test]
fn fallback_bounds_expansion() {
    forall!(
        cases = 64,
        (gen::vec_of(gen::any_int::<u32>(), 1..400)),
        |text| {
            let image = CodePackImage::compress(&text, &CompressionConfig::default());
            let padded_blocks = (text.len() as u64).div_ceil(32) * 2;
            let stream_limit = padded_blocks * 65; // 64B + flag byte, aligned
            assert!(image.compressed_bytes().len() as u64 <= stream_limit);
        }
    );
}

/// Index-table resolution agrees with the layout for every block.
#[test]
fn index_table_consistent() {
    forall!(cases = 64, (arb_text()), |text| {
        let image = CodePackImage::compress(&text, &CompressionConfig::default());
        for b in 0..image.num_blocks() {
            assert_eq!(
                image.block_offset_via_index(b).unwrap(),
                image.block_info(b).byte_offset
            );
        }
    });
}

/// Block metadata invariants: monotone cumulative bits, byte length
/// covers them, blocks tile the stream.
#[test]
fn block_metadata_invariants() {
    forall!(cases = 64, (arb_text()), |text| {
        let image = CodePackImage::compress(&text, &CompressionConfig::default());
        let mut expected_offset = 0u32;
        for b in 0..image.num_blocks() {
            let info = image.block_info(b);
            assert_eq!(
                info.byte_offset, expected_offset,
                "blocks tile contiguously"
            );
            expected_offset += u32::from(info.byte_len);
            for j in 0..16 {
                assert!(info.cum_bits[j] < info.cum_bits[j + 1]);
            }
            assert!(u32::from(info.cum_bits[16]).div_ceil(8) <= u32::from(info.byte_len));
        }
        assert_eq!(expected_offset as usize, image.compressed_bytes().len());
    });
}

/// ROM serialization round-trips for arbitrary texts; the loaded image
/// behaves identically (same decode output, same per-block metadata).
#[test]
fn rom_round_trip() {
    forall!(cases = 32, (arb_text()), |text| {
        let image = CodePackImage::compress(&text, &CompressionConfig::default());
        let loaded = CodePackImage::from_rom_bytes(&image.to_rom_bytes()).unwrap();
        assert_eq!(loaded.decompress_all().unwrap(), text);
        for b in 0..image.num_blocks() {
            assert_eq!(
                &loaded.block_info(b).cum_bits,
                &image.block_info(b).cum_bits
            );
        }
    });
}

/// Truncating a ROM anywhere yields an error, never a panic.
#[test]
fn rom_truncation_always_errors() {
    forall!(
        cases = 32,
        (arb_text(), gen::unit_f64()),
        |text, cut_frac| {
            let rom = CodePackImage::compress(&text, &CompressionConfig::default()).to_rom_bytes();
            let cut = ((rom.len() as f64) * cut_frac) as usize;
            assert!(CodePackImage::from_rom_bytes(&rom[..cut.min(rom.len() - 1)]).is_err());
        }
    );
}
