//! Differential round-trip: decompress(compress(text)) == text for every
//! benchmark profile's full text section and for the degenerate shapes
//! the block codec has to handle.

use codepack::core::{CodePackImage, CompressionConfig};
use codepack::synth::{generate, BenchmarkProfile};

fn roundtrip(text: &[u32]) {
    let image = CodePackImage::compress(text, &CompressionConfig::default());
    assert_eq!(
        image.decompress_all().unwrap(),
        text,
        "whole-image mismatch"
    );
    // And block-by-block, as the hardware decompressor would fetch it.
    let mut words = Vec::with_capacity(text.len());
    for b in 0..image.num_blocks() {
        words.extend_from_slice(&image.decompress_block(b).unwrap());
    }
    words.truncate(text.len()); // final block is zero-padded to 16 words
    assert_eq!(words, text, "block-wise mismatch");
}

#[test]
fn every_profile_roundtrips_losslessly() {
    for profile in BenchmarkProfile::suite() {
        let program = generate(&profile, 42);
        roundtrip(program.text_words());
    }
}

#[test]
#[should_panic(expected = "empty text section")]
fn empty_text_is_rejected_loudly() {
    // The codec's contract: an empty text section is a caller bug, not a
    // silent zero-block image.
    let _ = CodePackImage::compress(&[], &CompressionConfig::default());
}

#[test]
fn single_instruction_roundtrips() {
    roundtrip(&[0x2402_0001]);
    roundtrip(&[0x0000_0000]);
    roundtrip(&[0xffff_ffff]);
}

#[test]
fn all_escape_text_roundtrips() {
    // Every half-word distinct: nothing earns a dictionary slot, so every
    // symbol takes the raw-escape path (or whole blocks fall back to raw).
    let text: Vec<u32> = (0..1024u32)
        .map(|i| {
            let h = i * 2 + 1;
            let l = i * 2 + 2;
            (u32::from(h as u16) << 16) | u32::from(l as u16)
        })
        .collect();
    roundtrip(&text);

    // Same shape but with the fallback disabled: forces per-symbol escapes.
    let cfg = CompressionConfig {
        raw_block_fallback: false,
        ..CompressionConfig::default()
    };
    let image = CodePackImage::compress(&text, &cfg);
    assert_eq!(image.decompress_all().unwrap(), text);
    assert!(
        image.stats().raw_halfwords > 0,
        "escape path must actually be exercised"
    );
}

#[test]
fn partial_final_block_roundtrips() {
    // Lengths around the 16-instruction block boundary.
    for len in [1usize, 15, 16, 17, 31, 32, 33] {
        let text: Vec<u32> = (0..len as u32).map(|i| 0x2402_0000 | i).collect();
        roundtrip(&text);
    }
}
