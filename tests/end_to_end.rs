//! End-to-end integration: generation → compression → simulation, across
//! every benchmark profile and code model.

use codepack::core::{CodePackImage, CompressionConfig};
use codepack::sim::{ArchConfig, CodeModel, Simulation};
use codepack::synth::{generate, BenchmarkProfile};

const RUN: u64 = 60_000;

#[test]
fn compression_round_trips_every_benchmark() {
    for profile in BenchmarkProfile::suite() {
        let program = generate(&profile, 7);
        let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
        assert_eq!(
            image.decompress_all().expect("well-formed image"),
            program.text_words(),
            "{} must round-trip bit-exactly",
            profile.name
        );
    }
}

#[test]
fn all_code_models_execute_identically() {
    // Compression is a pure representation change: architectural results
    // must be bit-identical for every model and machine.
    for profile in [BenchmarkProfile::pegwit_like(), BenchmarkProfile::go_like()] {
        let program = generate(&profile, 11);
        for arch in [
            ArchConfig::one_issue(),
            ArchConfig::four_issue(),
            ArchConfig::eight_issue(),
        ] {
            let native = Simulation::new(arch, CodeModel::Native).run(&program, RUN);
            let packed = Simulation::new(arch, CodeModel::codepack_baseline()).run(&program, RUN);
            let opt = Simulation::new(arch, CodeModel::codepack_optimized()).run(&program, RUN);
            assert_eq!(
                native.state_hash, packed.state_hash,
                "{} {}",
                profile.name, arch.name
            );
            assert_eq!(
                native.state_hash, opt.state_hash,
                "{} {}",
                profile.name, arch.name
            );
            assert_eq!(native.retired_instructions, packed.retired_instructions);
            assert_eq!(
                native.pipeline.dcache.accesses, packed.pipeline.dcache.accesses,
                "data-side behaviour must be unchanged by code compression"
            );
        }
    }
}

#[test]
fn compressed_blocks_match_text_through_the_index_table() {
    // Decode every block via the index-table path (as hardware would) and
    // compare against the original text, block by block.
    let program = generate(&BenchmarkProfile::mpeg2enc_like(), 3);
    let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
    let text = program.text_words();
    for block in 0..image.num_blocks() {
        let words = image.decompress_block(block).expect("block decodes");
        for (j, &w) in words.iter().enumerate() {
            let idx = block as usize * 16 + j;
            if idx < text.len() {
                assert_eq!(w, text[idx], "block {block}, instruction {j}");
            } else {
                assert_eq!(w, 0, "pad instructions are NOPs");
            }
        }
    }
}

#[test]
fn every_profile_simulates_on_the_baseline_machine() {
    for profile in BenchmarkProfile::suite() {
        let program = generate(&profile, 5);
        let r = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
            .run(&program, 30_000);
        assert!(r.cycles() > 0);
        assert!(
            r.ipc() > 0.05 && r.ipc() < 8.0,
            "{}: IPC {}",
            profile.name,
            r.ipc()
        );
        assert!(
            r.pipeline.branches > 0,
            "{} must execute branches",
            profile.name
        );
    }
}

#[test]
fn deterministic_cycles_across_repeated_runs() {
    let program = generate(&BenchmarkProfile::pegwit_like(), 1234);
    let sim = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_optimized());
    let a = sim.run(&program, RUN);
    let b = sim.run(&program, RUN);
    assert_eq!(a.cycles(), b.cycles(), "simulation must be deterministic");
    assert_eq!(a.fetch.misses, b.fetch.misses);
}
