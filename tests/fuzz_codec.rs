//! Deterministic mutation fuzzer for the CodePack codec.
//!
//! Seeds a testkit PRNG (no wall clock, no OS entropy — every CI run and
//! every `cargo test` executes the identical mutation schedule), mutates
//! compressed images with byte overwrites and single-bit flips, and
//! checks the codec's corruption contract: decoding mutated bytes may
//! succeed (misdecode) or fail with a typed [`DecompressError`], but it
//! must never panic, and every error must carry positions that are
//! in bounds for the input that produced it.
//!
//! Every mutated input is decoded through *both* backends — the scalar
//! reference and the table-driven fast path — and the two `Result`s are
//! diffed: under fuzz the backends must stay byte- and error-identical.

use codepack::core::frame::{pack_frame, unpack_frame, FrameReader, PackOptions, UnpackOptions};
use codepack::core::{
    decode_block_bytes, CodePackImage, CompressionConfig, DecompressError, FastDecoder, BLOCK_INSNS,
};
use codepack::synth::{generate, BenchmarkProfile};
use codepack_testkit::Rng;

/// Fixed fuzzing seed: the schedule below is part of the test contract.
const FUZZ_SEED: u64 = 0x0BAD_C0DE_D00D_FEED;

fn image() -> CodePackImage {
    let text = generate(&BenchmarkProfile::pegwit_like(), 11)
        .text_words()
        .to_vec();
    CodePackImage::compress(&text, &CompressionConfig::default())
}

/// Asserts the in-bounds contract on one decode error.
fn check_error(e: DecompressError, input_bits: u64, context: &str) {
    match e {
        DecompressError::Truncated { at_bit } => assert!(
            at_bit <= input_bits,
            "{context}: truncation at bit {at_bit} outside the {input_bits}-bit input"
        ),
        DecompressError::BadDictIndex {
            rank,
            dict_len,
            high,
        } => assert!(
            rank >= dict_len,
            "{context}: rank {rank} is not out of range for the \
             {dict_len}-entry {} dictionary",
            if high { "high" } else { "low" }
        ),
        DecompressError::BadBlock { block, blocks } => assert!(
            block >= blocks,
            "{context}: block {block} claimed bad inside a {blocks}-block image"
        ),
    }
}

#[test]
fn mutated_block_bytes_never_panic_and_errors_stay_in_bounds() {
    let clean = image();
    let fast = FastDecoder::new(clean.high_dict(), clean.low_dict());
    let mut rng = Rng::seed_from_u64(FUZZ_SEED);
    let base = clean.compressed_bytes().to_vec();
    for round in 0..400 {
        // Take a window starting at a (possibly misaligned) offset so the
        // decoder also sees streams that begin mid-block.
        let start = rng.gen_range(0..base.len().min(512));
        let mut bytes = base[start..].to_vec();
        let mutations = rng.gen_range(1usize..=4);
        for _ in 0..mutations {
            let at = rng.gen_range(0..bytes.len());
            if rng.gen_bool(0.5) {
                bytes[at] ^= 1 << rng.gen_range(0u32..8);
            } else {
                bytes[at] = rng.gen_u32() as u8;
            }
        }
        // Also truncate sometimes: short inputs exercise `Truncated`.
        if rng.gen_bool(0.25) {
            bytes.truncate(rng.gen_range(0..=bytes.len()));
        }
        let bits = bytes.len() as u64 * 8;
        let scalar = decode_block_bytes(&bytes, clean.high_dict(), clean.low_dict());
        match &scalar {
            Ok(words) => assert_eq!(words.len(), BLOCK_INSNS as usize),
            Err(e) => check_error(*e, bits, &format!("round {round}")),
        }
        assert_eq!(
            fast.decode_block(&bytes),
            scalar,
            "round {round}: backends diverge on a mutated stream"
        );
    }
}

#[test]
fn mutated_images_never_panic_across_all_blocks() {
    let clean = image();
    let mut rng = Rng::seed_from_u64(FUZZ_SEED ^ 1);
    let len = clean.compressed_bytes().len();
    for round in 0..60 {
        let mut corrupt = clean.clone();
        for _ in 0..rng.gen_range(1usize..=3) {
            let at = rng.gen_range(0..len);
            corrupt = corrupt
                .with_corrupted_bytes(at, rng.gen_u32() as u8)
                .expect("mutation offsets are drawn in bounds");
        }
        let bits = len as u64 * 8;
        for block in 0..corrupt.num_blocks() {
            let scalar = corrupt.decompress_block(block);
            if let Err(e) = &scalar {
                check_error(*e, bits, &format!("round {round} block {block}"));
            }
            assert_eq!(
                corrupt.decode_block_fast(block),
                scalar,
                "round {round} block {block}: backends diverge on a corrupt image"
            );
        }
        // Out-of-range blocks stay typed errors on corrupt images too.
        match corrupt.decompress_block(corrupt.num_blocks()) {
            Err(DecompressError::BadBlock { block, blocks }) => {
                assert_eq!(block, corrupt.num_blocks());
                assert_eq!(blocks, corrupt.num_blocks());
            }
            other => panic!("expected BadBlock, got {other:?}"),
        }
    }
}

/// Mutated `.cpk` frames never panic the frame parser: every outcome is
/// either a clean decode or a typed [`FrameError`], identically through
/// the one-shot unpacker (serial and parallel) and the streaming reader.
#[test]
fn mutated_frames_never_panic_and_stay_typed() {
    let text = generate(&BenchmarkProfile::pegwit_like(), 11)
        .text_words()
        .to_vec();
    let base = pack_frame(&text[..640], &PackOptions::default());
    let mut rng = Rng::seed_from_u64(FUZZ_SEED ^ 2);
    for round in 0..400 {
        let mut bytes = base.clone();
        for _ in 0..rng.gen_range(1usize..=4) {
            let at = rng.gen_range(0..bytes.len());
            if rng.gen_bool(0.5) {
                bytes[at] ^= 1 << rng.gen_range(0u32..8);
            } else {
                bytes[at] = rng.gen_u32() as u8;
            }
        }
        match rng.gen_range(0u32..4) {
            0 => bytes.truncate(rng.gen_range(0..=bytes.len())),
            1 => bytes.extend((0..rng.gen_range(1usize..=8)).map(|_| rng.gen_u32() as u8)),
            _ => {}
        }

        let serial = unpack_frame(&bytes, &UnpackOptions::default());
        let parallel = unpack_frame(
            &bytes,
            &UnpackOptions {
                workers: 3,
                ..UnpackOptions::default()
            },
        );
        assert_eq!(
            serial, parallel,
            "round {round}: serial and parallel unpack disagree on a mutated frame"
        );

        // The streaming reader must reach the same verdict: the same words
        // on success, an error (wrapped in io::Error) on failure.
        let mut streamed = Vec::new();
        let outcome = FrameReader::new(&bytes[..])
            .map_err(drop)
            .and_then(|mut r| std::io::copy(&mut r, &mut streamed).map_err(drop));
        match (&serial, outcome) {
            (Ok(words), Ok(_)) => {
                let le: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
                assert_eq!(
                    streamed, le,
                    "round {round}: reader decoded different words"
                );
            }
            (Err(_), Err(())) => {}
            (s, r) => panic!(
                "round {round}: one-shot ({}) and streaming ({}) verdicts diverge",
                if s.is_ok() { "ok" } else { "err" },
                if r.is_ok() { "ok" } else { "err" },
            ),
        }
    }
}

#[test]
fn fuzz_schedule_is_deterministic() {
    // The fuzzer's value is reproducibility: the same seed must drive the
    // same mutations, so a failure message's round number is enough to
    // replay it. Draw the first few choices twice and compare.
    let draws = |seed: u64| -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..32).map(|_| rng.gen_u64()).collect()
    };
    assert_eq!(draws(FUZZ_SEED), draws(FUZZ_SEED));
    assert_ne!(draws(FUZZ_SEED), draws(FUZZ_SEED ^ 1));
}
