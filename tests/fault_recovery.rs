//! Acceptance tests for the soft-error subsystem: arming at rate 0 is
//! timing- and trace-neutral, the fault ledger conserves, and exhausted
//! recovery surfaces as a precise machine check.

use std::sync::Arc;

use codepack::core::{CodePackFetch, CodePackImage, CompressionConfig, DecompressorConfig};
use codepack::cpu::{ExecError, Machine, Pipeline, PipelineConfig};
use codepack::isa::TEXT_BASE;
use codepack::mem::{CacheConfig, FaultStats, IntegrityConfig, MemoryTiming, SoftErrorConfig};
use codepack::obs::{EventKind, Obs, RingSink};
use codepack::sim::{ArchConfig, CodeModel, Simulation};
use codepack::synth::{generate, BenchmarkProfile};

fn observed(
    model: CodeModel,
) -> (
    codepack::sim::SimResult,
    Vec<codepack::obs::TraceEvent>,
    String,
) {
    let p = generate(&BenchmarkProfile::pegwit_like(), 17);
    let (result, report) = Simulation::new(ArchConfig::four_issue(), model)
        .try_run_observed(
            &p,
            30_000,
            None,
            Obs::with_sink(Box::new(RingSink::new(1 << 15))),
        )
        .expect("run completes");
    let report = report.expect("enabled handle yields a report");
    let events = report.sink.events().to_vec();
    let json = report.to_json();
    (result, events, json)
}

#[test]
fn armed_at_rate_zero_is_byte_identical_to_unarmed() {
    let unarmed = CodeModel::codepack_optimized();
    let armed = CodeModel::codepack_optimized().with_protection(SoftErrorConfig::new(
        0xDEAD_BEEF,
        0,
        IntegrityConfig::none(),
    ));
    let (r0, e0, j0) = observed(unarmed);
    let (r1, e1, j1) = observed(armed);

    assert_eq!(r0.cycles(), r1.cycles(), "rate 0 must not cost a cycle");
    assert_eq!(r0.state_hash, r1.state_hash);
    assert_eq!(r0.pipeline, r1.pipeline, "all timing statistics identical");
    assert_eq!(e0, e1, "event traces are identical");
    assert_eq!(j0, j1, "metrics + attribution reports are byte-identical");
    // The only visible difference: the armed run carries an (empty) ledger.
    assert_eq!(r0.faults, None);
    assert_eq!(r1.faults, Some(FaultStats::default()));
}

#[test]
fn crc_ledger_conserves_and_matches_the_trace() {
    let cfg = SoftErrorConfig::new(0xFA117, 20_000_000, IntegrityConfig::crc32());
    let (result, events, _) = observed(CodeModel::codepack_optimized().with_protection(cfg));
    let ft = result.faults.expect("armed run carries a ledger");

    assert!(ft.injected > 0, "2e-2 rate must strike within 30k insns");
    assert_eq!(
        ft.injected,
        ft.recovered + ft.trapped + ft.silent,
        "every injected fault is recovered, trapped, or silent: {ft:?}"
    );
    assert_eq!(
        ft.detected,
        ft.recovered + ft.trapped,
        "every detected fault is either cured or trapped: {ft:?}"
    );
    assert!(ft.detected > 0, "CRC must catch stream strikes: {ft:?}");

    // The trace accounts for the same ledger the counters do.
    let count = |f: fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count() as u64;
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultInjected { .. })),
        ft.injected
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultDetected { .. })),
        ft.detected
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultSilent { .. })),
        ft.silent
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultRetry { .. })),
        ft.retries
    );
}

#[test]
fn exhausted_recovery_raises_a_precise_machine_check() {
    // Rate 1.0: every probed access faults, so the stream re-fetch loop
    // exhausts its budget on the first compressed miss.
    let cfg = SoftErrorConfig::new(7, 1_000_000_000, IntegrityConfig::crc32()).with_max_refetch(2);
    let p = generate(&BenchmarkProfile::pegwit_like(), 17);

    let err = Simulation::new(
        ArchConfig::four_issue(),
        CodeModel::codepack_optimized().with_protection(cfg),
    )
    .try_run(&p, 30_000)
    .expect_err("saturated faults must trap");
    assert!(
        matches!(err, ExecError::MachineCheck { .. }),
        "expected a machine check, got {err:?}"
    );
    assert!(err.to_string().contains("machine check"), "{err}");

    // Drive the pipeline directly to read the partial ledger: the trap is
    // counted, the faulted instruction is not retired.
    let image = Arc::new(CodePackImage::compress(
        p.text_words(),
        &CompressionConfig::default(),
    ));
    let fetch = CodePackFetch::new(
        image,
        MemoryTiming::default(),
        DecompressorConfig::optimized(),
        TEXT_BASE,
    )
    .with_protection(cfg);
    let mut pipe = Pipeline::new(
        PipelineConfig::four_issue(),
        CacheConfig::icache_4issue(),
        CacheConfig::dcache_4issue(),
        MemoryTiming::default(),
        Box::new(fetch),
    );
    pipe.set_soft_errors(Some(cfg));
    let mut machine = Machine::load(&p);
    let err = pipe.run(&mut machine, 30_000).expect_err("must trap");
    let pc = match err {
        ExecError::MachineCheck { pc } => pc,
        other => panic!("expected machine check, got {other:?}"),
    };
    assert!(pc >= TEXT_BASE, "trap pc {pc:#x} is a text address");
    let stats = pipe.stats();
    let ft = stats.faults;
    assert_eq!(
        ft.machine_checks, 1,
        "exactly one trap ends the run: {ft:?}"
    );
    assert!(ft.trapped > 0, "trapped faults are ledgered: {ft:?}");
    assert_eq!(ft.injected, ft.recovered + ft.trapped + ft.silent, "{ft:?}");
    assert!(
        stats.cycles > 0,
        "partial statistics survive the trap for campaign reporting"
    );
}

#[test]
fn machine_checks_are_deterministic() {
    // The same configuration traps at the same pc after the same number
    // of retired instructions, every time.
    let cfg = SoftErrorConfig::new(7, 1_000_000_000, IntegrityConfig::crc32()).with_max_refetch(2);
    let p = generate(&BenchmarkProfile::pegwit_like(), 17);
    let sim = Simulation::new(
        ArchConfig::four_issue(),
        CodeModel::codepack_optimized().with_protection(cfg),
    );
    let a = sim.try_run(&p, 30_000).expect_err("traps");
    let b = sim.try_run(&p, 30_000).expect_err("traps");
    assert_eq!(a, b, "fault injection is a pure function of the run");
}
