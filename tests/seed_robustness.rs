//! The reproduction's conclusions must not be artifacts of one particular
//! generated program: the paper-level trends hold across generator seeds.

use codepack::sim::{ArchConfig, CodeModel, Simulation};
use codepack::synth::{generate, BenchmarkProfile};

const RUN: u64 = 80_000;
const SEEDS: [u64; 3] = [7, 1234, 987_654_321];

#[test]
fn compression_band_holds_across_seeds() {
    for seed in SEEDS {
        let program = generate(&BenchmarkProfile::go_like(), seed);
        let r = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
            .run(&program, RUN);
        let ratio = r.compression.unwrap().compression_ratio();
        assert!(
            (0.50..0.70).contains(&ratio),
            "seed {seed}: ratio {ratio:.3} left the CodePack band"
        );
    }
}

#[test]
fn optimization_ordering_holds_across_seeds() {
    for seed in SEEDS {
        let program = generate(&BenchmarkProfile::vortex_like(), seed);
        let arch = ArchConfig::four_issue();
        let native = Simulation::new(arch, CodeModel::Native).run(&program, RUN);
        let base = Simulation::new(arch, CodeModel::codepack_baseline()).run(&program, RUN);
        let opt = Simulation::new(arch, CodeModel::codepack_optimized()).run(&program, RUN);
        assert!(
            base.cycles() > opt.cycles(),
            "seed {seed}: optimizations must help"
        );
        assert!(
            base.speedup_over(&native) < 1.0 && base.speedup_over(&native) > 0.75,
            "seed {seed}: baseline loss out of band ({:.3})",
            base.speedup_over(&native)
        );
    }
}

#[test]
fn narrow_bus_advantage_holds_across_seeds() {
    for seed in SEEDS {
        let program = generate(&BenchmarkProfile::cc1_like(), seed);
        let narrow = ArchConfig::four_issue().with_bus_bits(16);
        let native = Simulation::new(narrow, CodeModel::Native).run(&program, RUN);
        let opt = Simulation::new(narrow, CodeModel::codepack_optimized()).run(&program, RUN);
        assert!(
            opt.speedup_over(&native) > 1.0,
            "seed {seed}: narrow-bus win must hold ({:.3})",
            opt.speedup_over(&native)
        );
    }
}

#[test]
fn different_seeds_produce_different_but_equivalent_shaped_programs() {
    let a = generate(&BenchmarkProfile::pegwit_like(), SEEDS[0]);
    let b = generate(&BenchmarkProfile::pegwit_like(), SEEDS[1]);
    assert_ne!(a.text_words(), b.text_words(), "programs must differ");
    let size_a = a.text_size_bytes() as f64;
    let size_b = b.text_size_bytes() as f64;
    assert!(
        (size_a / size_b - 1.0).abs() < 0.05,
        "profile controls size, not the seed: {size_a} vs {size_b}"
    );
}
