//! Golden compression ratios, pinned per profile.
//!
//! Two layers of protection: a tight band around the measured value at
//! the canonical experiment seed (catches codec or generator drift), and
//! a loose band around the paper's Table 3 number (catches the synthetic
//! programs wandering away from the workloads they model).

use codepack::core::{CodePackImage, CompressionConfig};
use codepack::synth::{generate, BenchmarkProfile};

/// Measured at seed 42 with the default codec configuration.
const GOLDEN: [(&str, f64); 6] = [
    ("cc1", 0.5923),
    ("go", 0.5828),
    ("mpeg2enc", 0.5952),
    ("pegwit", 0.5895),
    ("perl", 0.5882),
    ("vortex", 0.5848),
];

/// Paper Table 3, percent of native size.
const PAPER: [(&str, f64); 6] = [
    ("cc1", 60.4),
    ("go", 58.9),
    ("mpeg2enc", 63.1),
    ("pegwit", 61.1),
    ("perl", 60.7),
    ("vortex", 55.4),
];

fn ratio(profile: &BenchmarkProfile) -> f64 {
    let program = generate(profile, 42);
    let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
    // A ratio is only worth pinning if the accounting behind it is
    // internally consistent; silent drift in the composition stats must
    // fail here, not ride along under a still-plausible total.
    image
        .stats()
        .verify()
        .unwrap_or_else(|e| panic!("{}: inconsistent composition stats: {e}", profile.name));
    image.stats().compression_ratio()
}

#[test]
fn ratios_match_the_pinned_goldens() {
    for profile in BenchmarkProfile::suite() {
        let (_, golden) = GOLDEN.iter().find(|(n, _)| *n == profile.name).unwrap();
        let got = ratio(&profile);
        assert!(
            (got - golden).abs() < 0.003,
            "{}: ratio {:.4} drifted from golden {:.4}",
            profile.name,
            got,
            golden
        );
    }
}

#[test]
fn ratios_stay_near_the_paper_table3_band() {
    for profile in BenchmarkProfile::suite() {
        let (_, paper_pct) = PAPER.iter().find(|(n, _)| *n == profile.name).unwrap();
        let got_pct = ratio(&profile) * 100.0;
        assert!(
            (got_pct - paper_pct).abs() < 6.0,
            "{}: {:.1}% too far from the paper's {:.1}%",
            profile.name,
            got_pct,
            paper_pct
        );
    }
}

#[test]
fn golden_table_covers_the_whole_suite() {
    let suite = BenchmarkProfile::suite();
    assert_eq!(suite.len(), GOLDEN.len());
    for p in &suite {
        assert!(
            GOLDEN.iter().any(|(n, _)| *n == p.name),
            "{} missing a golden",
            p.name
        );
    }
}
