//! The parallel experiment runner must be a pure function of its spec:
//! the worker count may change wall-clock time, never the report.

use codepack::sim::{run_matrix, run_matrix_observed, ArchConfig, MatrixSpec};
use codepack::synth::BenchmarkProfile;

fn spec() -> MatrixSpec {
    MatrixSpec::new(42, 30_000)
        .with_profiles(vec![
            BenchmarkProfile::pegwit_like(),
            BenchmarkProfile::go_like(),
        ])
        .with_archs(vec![ArchConfig::one_issue(), ArchConfig::four_issue()])
}

#[test]
fn worker_count_does_not_change_the_report() {
    let serial = run_matrix(&spec(), 1);
    let parallel = run_matrix(&spec(), 3);

    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!((a.profile, a.arch, a.model), (b.profile, b.arch, b.model));
        assert_eq!(a.expect_ok().cycles(), b.expect_ok().cycles());
        assert_eq!(a.expect_ok().state_hash, b.expect_ok().state_hash);
    }
    // The strongest form: rendered table and JSON are byte-identical.
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn metrics_snapshots_are_worker_count_invariant() {
    // The observed cube attaches a metrics-only observer to every cell.
    // Observation reconstructs timelines from results — it never sits in
    // the timing path — so the per-cell snapshot must be byte-identical
    // whether one worker ran the cube or three raced through it, and the
    // observed cube must agree with the unobserved one cycle-for-cycle.
    let plain = run_matrix(&spec(), 2);
    let serial = run_matrix_observed(&spec(), 1);
    let parallel = run_matrix_observed(&spec(), 3);

    assert_eq!(serial.cells.len(), parallel.cells.len());
    for ((a, b), p) in serial.cells.iter().zip(&parallel.cells).zip(&plain.cells) {
        assert_eq!((a.profile, a.arch, a.model), (b.profile, b.arch, b.model));
        let ma = a.metrics.as_ref().expect("observed cells carry metrics");
        let mb = b.metrics.as_ref().expect("observed cells carry metrics");
        assert_eq!(
            ma,
            mb,
            "{}: metrics differ across worker counts",
            a.file_stem()
        );
        assert!(p.metrics.is_none(), "plain cells carry no metrics");
        assert_eq!(
            a.expect_ok().cycles(),
            p.expect_ok().cycles(),
            "{}: observation perturbed timing",
            a.file_stem()
        );
    }
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn repeated_runs_are_reproducible() {
    let a = run_matrix(&spec(), 2);
    let b = run_matrix(&spec(), 2);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn native_and_codepack_cells_agree_on_architectural_state() {
    // The cube re-runs every profile under every model; compression must
    // never change what the program computes.
    let report = run_matrix(&spec(), 2);
    for cell in &report.cells {
        let native = report.cell(cell.profile, cell.arch, "native").unwrap();
        assert_eq!(
            cell.expect_ok().state_hash,
            native.expect_ok().state_hash,
            "{}/{}/{} diverged from native execution",
            cell.profile,
            cell.arch,
            cell.model
        );
    }
}
