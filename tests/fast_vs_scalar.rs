//! Differential battery: scalar decoder vs table-driven fast decoder vs
//! the sr32lint static walk — three independent decompression paths that
//! must agree byte-for-byte on every profile, and the first two must agree
//! on the *error value* for every corrupt or truncated stream.
//!
//! The scalar decoder is the bit-at-a-time reference, the fast decoder is
//! the production hot path, and the static walk re-derives the text from
//! the raw image parts without touching either decoder's code — a genuine
//! third opinion, not a re-run of the same routine.

use codepack::core::{
    decode_block_bytes, CodePackImage, CompressionConfig, DecodeBackend, FastDecoder,
};
use codepack::synth::{generate, BenchmarkProfile};
use codepack_analyze::{check_image, ImageParts, LintReport};
use codepack_testkit::forall;
use codepack_testkit::prop::{gen, Gen};

/// Compresses one profile/seed and returns (text, image).
fn build(profile: &BenchmarkProfile, seed: u64) -> (Vec<u32>, CodePackImage) {
    let text = generate(profile, seed).text_words().to_vec();
    let image = CodePackImage::compress(&text, &CompressionConfig::default());
    (text, image)
}

/// The three-way oracle on one image: scalar, fast, and static walk all
/// recover the original text; block-level decodes agree pairwise.
fn assert_three_way(text: &[u32], image: &CodePackImage, context: &str) {
    let scalar = image
        .decompress_all_with(DecodeBackend::Scalar)
        .expect("scalar decodes a clean image");
    let fast = image
        .decompress_all_fast()
        .expect("fast decodes a clean image");
    assert_eq!(scalar, text, "{context}: scalar != original");
    assert_eq!(fast, scalar, "{context}: fast != scalar");

    let mut report = LintReport::new(context);
    let walk = check_image(&ImageParts::of_image(image), Some(text), &mut report);
    assert!(walk.complete, "{context}: static walk incomplete");
    assert_eq!(report.errors(), 0, "{context}: lint errors {report:?}");
    assert_eq!(
        &walk.words[..text.len()],
        &scalar[..],
        "{context}: static walk != scalar"
    );

    // Block-by-block through the image APIs, not just whole-image.
    for b in 0..image.num_blocks() {
        assert_eq!(
            image.decode_block_fast(b),
            image.decompress_block_with(b, DecodeBackend::Scalar),
            "{context}: block {b} diverges"
        );
    }
}

#[test]
fn all_profiles_agree_three_ways() {
    for profile in BenchmarkProfile::suite() {
        let (text, image) = build(&profile, 42);
        assert_three_way(&text, &image, profile.name);
    }
}

#[test]
fn multiple_seeds_agree_three_ways() {
    // Different seeds reshuffle value frequencies, so the dictionaries —
    // and with them the decode tables — come out materially different.
    for profile in BenchmarkProfile::suite().into_iter().take(2) {
        for seed in [1u64, 7, 99] {
            let (text, image) = build(&profile, seed);
            assert_three_way(&text, &image, &format!("{}/seed{}", profile.name, seed));
        }
    }
}

/// Instruction-word generator biased toward dictionary-friendly repeats
/// with an injection of raw-escape noise.
fn arb_text() -> Gen<Vec<u32>> {
    let common = gen::one_of(vec![
        gen::just(0x2402_0001u32),
        gen::just(0x8c62_0004u32),
        gen::just(0xafbf_0014u32),
        gen::just(0x0000_0000u32),
        gen::just(0x03e0_0008u32),
    ]);
    let word = gen::weighted(vec![(4, common), (1, gen::any_int::<u32>())]);
    gen::vec_of(word, 1..400)
}

fn arb_config() -> Gen<CompressionConfig> {
    gen::bools()
        .zip(gen::bools())
        .zip(gen::ints(1u32..4))
        .map(|((raw, pin), min)| CompressionConfig {
            raw_block_fallback: raw,
            pin_low_zero: pin,
            dict_min_count: min,
        })
}

/// Fast path round-trips arbitrary texts under arbitrary codec configs —
/// including configs that disable the raw-block fallback or pin low zero.
#[test]
fn fast_roundtrips_any_text_any_config() {
    forall!(cases = 64, (arb_text(), arb_config()), |text, config| {
        let image = CodePackImage::compress(&text, &config);
        assert_eq!(image.decompress_all_fast().unwrap(), text);
        assert_eq!(
            image.decompress_all_with(DecodeBackend::Fast).unwrap(),
            image.decompress_all_with(DecodeBackend::Scalar).unwrap(),
        );
    });
}

/// Truncating the stream anywhere yields the *same* `Result` — success or
/// the identical `DecompressError` value — from both backends. The fast
/// decoder must not trade error fidelity for speed.
#[test]
fn truncation_yields_identical_results() {
    forall!(
        cases = 64,
        (arb_text(), gen::unit_f64()),
        |text, cut_frac| {
            let image = CodePackImage::compress(&text, &CompressionConfig::default());
            let fast = FastDecoder::new(image.high_dict(), image.low_dict());
            let bytes = image.compressed_bytes();
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let short = &bytes[..cut.min(bytes.len())];
            assert_eq!(
                fast.decode_block(short),
                decode_block_bytes(short, image.high_dict(), image.low_dict()),
                "truncated to {cut} bytes"
            );
        }
    );
}

/// Corrupting any stream byte yields identical per-block `Result`s from
/// both backends: same words on misdecodes, same error values otherwise,
/// and never a panic.
#[test]
fn corruption_yields_identical_results() {
    forall!(
        cases = 64,
        (arb_text(), gen::unit_f64(), gen::any_int::<u8>()),
        |text, at_frac, value| {
            let image = CodePackImage::compress(&text, &CompressionConfig::default());
            let len = image.compressed_bytes().len();
            let at = ((len as f64) * at_frac) as usize;
            let corrupt = image
                .with_corrupted_bytes(at.min(len - 1), value)
                .expect("offset in bounds");
            for b in 0..corrupt.num_blocks() {
                assert_eq!(
                    corrupt.decode_block_fast(b),
                    corrupt.decompress_block_with(b, DecodeBackend::Scalar),
                    "block {b} after corrupting byte {at} to {value:#04x}"
                );
            }
        }
    );
}
