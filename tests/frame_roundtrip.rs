//! Three-way differential test of the `.cpk` frame layer across all six
//! benchmark profiles, plus negative cases pinning exact error variants.
//!
//! The differential contract has three legs:
//!
//! 1. serial pack == parallel pack (byte-identical at any worker count);
//! 2. unpack(pack(text)) == text, through both decode backends and both
//!    worker regimes;
//! 3. the frame's decoded words equal `CodePackImage::decompress_all` on
//!    the same text — the frame layer adds transport, never semantics.

use codepack::core::frame::{
    pack_frame, unpack_frame, FrameError, FrameRegion, PackOptions, UnpackOptions,
};
use codepack::core::{CodePackImage, CompressionConfig, DecodeBackend};
use codepack::mem::StreamIntegrity;
use codepack::synth::{generate, BenchmarkProfile};

fn profiles() -> Vec<(&'static str, BenchmarkProfile)> {
    vec![
        ("cc1", BenchmarkProfile::cc1_like()),
        ("go", BenchmarkProfile::go_like()),
        ("mpeg2enc", BenchmarkProfile::mpeg2enc_like()),
        ("pegwit", BenchmarkProfile::pegwit_like()),
        ("perl", BenchmarkProfile::perl_like()),
        ("vortex", BenchmarkProfile::vortex_like()),
    ]
}

#[test]
fn three_way_differential_across_profiles_and_seeds() {
    for (name, profile) in profiles() {
        for seed in [3u64, 17, 42] {
            let text = generate(&profile, seed).text_words().to_vec();
            let image = CodePackImage::compress(&text, &CompressionConfig::default());
            let reference = image.decompress_all().unwrap();
            assert_eq!(reference, text, "{name}/{seed}: codec reference broke");

            let serial = pack_frame(&text, &PackOptions::default());
            for workers in [2usize, 4, 7] {
                let parallel = pack_frame(
                    &text,
                    &PackOptions {
                        workers,
                        ..PackOptions::default()
                    },
                );
                assert_eq!(
                    serial, parallel,
                    "{name}/{seed}: {workers}-worker pack is not byte-identical"
                );
            }

            for backend in [DecodeBackend::Scalar, DecodeBackend::Fast] {
                for workers in [1usize, 4] {
                    let opts = UnpackOptions { backend, workers };
                    let words = unpack_frame(&serial, &opts).unwrap();
                    assert_eq!(
                        words, reference,
                        "{name}/{seed}: unpack({backend:?}, {workers}w) diverges"
                    );
                }
            }
        }
    }
}

#[test]
fn integrity_modes_differ_only_in_trailers() {
    let text = generate(&BenchmarkProfile::pegwit_like(), 7)
        .text_words()
        .to_vec();
    let mut decoded = Vec::new();
    for integrity in [
        StreamIntegrity::None,
        StreamIntegrity::Parity,
        StreamIntegrity::Crc32,
    ] {
        let frame = pack_frame(
            &text,
            &PackOptions {
                integrity,
                ..PackOptions::default()
            },
        );
        decoded.push(unpack_frame(&frame, &UnpackOptions::default()).unwrap());
    }
    assert_eq!(decoded[0], text);
    assert_eq!(decoded[1], text);
    assert_eq!(decoded[2], text);
}

/// Cutting the frame anywhere yields exactly `Truncated` whose position
/// is the cut point or earlier — never a panic, never a misdecode.
#[test]
fn truncation_yields_the_truncated_variant() {
    let text = generate(&BenchmarkProfile::go_like(), 5)
        .text_words()
        .to_vec();
    let frame = pack_frame(&text[..96], &PackOptions::default());
    for cut in 0..frame.len() {
        match unpack_frame(&frame[..cut], &UnpackOptions::default()) {
            Err(FrameError::Truncated { at }) => assert!(
                at as usize <= cut,
                "cut {cut}: truncation reported beyond the input, at {at}"
            ),
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

/// Flipping a bit in a group's integrity trailer names that exact group;
/// flipping the frame trailer names the trailer region.
#[test]
fn flipped_trailers_name_their_region() {
    let text = generate(&BenchmarkProfile::perl_like(), 9)
        .text_words()
        .to_vec();
    let frame = pack_frame(&text[..128], &PackOptions::default());

    // The frame ends: ... last chunk | end marker u32 | trailer crc32.
    // Flip inside the trailer CRC itself.
    let mut bad = frame.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x80;
    assert_eq!(
        unpack_frame(&bad, &UnpackOptions::default()),
        Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Trailer
        })
    );

    // Flip the last group's crc32 trailer: the 4 bytes just before the
    // end marker (4) and trailer crc (4). 128 insns = 4 groups, so the
    // damaged group is index 3.
    let mut bad = frame.clone();
    let at = bad.len() - 9;
    bad[at] ^= 0x01;
    assert_eq!(
        unpack_frame(&bad, &UnpackOptions::default()),
        Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Group(3)
        })
    );

    // Same flip through the parallel unpacker: determinism requires the
    // identical error, not whichever worker noticed first.
    assert_eq!(
        unpack_frame(
            &bad,
            &UnpackOptions {
                workers: 4,
                ..UnpackOptions::default()
            }
        ),
        Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Group(3)
        })
    );
}

/// Header damage is pinned to its variant: magic, version, flags, CRC.
#[test]
fn header_damage_is_pinned_to_exact_variants() {
    let text = generate(&BenchmarkProfile::vortex_like(), 2)
        .text_words()
        .to_vec();
    let frame = pack_frame(&text[..64], &PackOptions::default());

    let mut bad = frame.clone();
    bad[0] = b'X';
    assert_eq!(
        unpack_frame(&bad, &UnpackOptions::default()),
        Err(FrameError::BadMagic)
    );

    let mut bad = frame.clone();
    bad[4] = 9; // version LE low byte
    assert_eq!(
        unpack_frame(&bad, &UnpackOptions::default()),
        Err(FrameError::VersionSkew { version: 9 })
    );

    let mut bad = frame.clone();
    bad[6] |= 0x04; // reserved flag bit 2
    match unpack_frame(&bad, &UnpackOptions::default()) {
        Err(FrameError::UnknownFlags { flags }) => assert_ne!(flags & !0b11, 0),
        other => panic!("expected UnknownFlags, got {other:?}"),
    }

    let mut bad = frame;
    bad[8] ^= 0xFF; // content size: caught by the header CRC
    assert_eq!(
        unpack_frame(&bad, &UnpackOptions::default()),
        Err(FrameError::ChecksumMismatch {
            region: FrameRegion::Header
        })
    );
}
