//! The hermetic-build guard: no manifest in the workspace may name an
//! external registry dependency. Everything must resolve from the
//! workspace itself so `cargo build --offline` works from a cold cache.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        assert!(dir.pop(), "no Cargo.lock above the test cwd");
    }
}

fn manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).unwrap() {
        let m = entry.unwrap().path().join("Cargo.toml");
        if m.exists() {
            out.push(m);
        }
    }
    out
}

/// Lines inside `[dependencies]`-like sections of a manifest.
fn dependency_lines(toml: &str) -> Vec<String> {
    let mut in_deps = false;
    let mut out = Vec::new();
    for line in toml.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_deps = section.ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            out.push(line.to_string());
        }
    }
    out
}

#[test]
fn every_dependency_is_a_workspace_member() {
    let root = workspace_root();
    let mut checked = 0;
    for manifest in manifests(&root) {
        let toml = fs::read_to_string(&manifest).unwrap();
        for line in dependency_lines(&toml) {
            checked += 1;
            assert!(
                line.contains("workspace = true") || line.contains("path ="),
                "{}: external-looking dependency `{}` — the workspace must \
                 build with --offline from a cold cache",
                manifest.display(),
                line
            );
        }
    }
    assert!(
        checked >= 10,
        "the guard must actually see the dependency graph, saw {checked}"
    );
}

#[test]
fn banned_crates_never_reappear() {
    // The crates this PR removed. `rand` gets word-boundary care so
    // codepack crate names don't false-positive.
    let root = workspace_root();
    for manifest in manifests(&root) {
        let toml = fs::read_to_string(&manifest).unwrap();
        for line in dependency_lines(&toml) {
            let name = line.split(['=', '.']).next().unwrap_or("").trim();
            for banned in ["rand", "proptest", "criterion", "rand_chacha", "serde"] {
                assert_ne!(
                    name,
                    banned,
                    "{}: `{banned}` is banned; use codepack-testkit",
                    manifest.display()
                );
            }
        }
    }
}

#[test]
fn workspace_has_no_registry_entries_in_the_lockfile() {
    let root = workspace_root();
    let lock = fs::read_to_string(root.join("Cargo.lock")).unwrap();
    assert!(
        !lock.contains("registry+"),
        "Cargo.lock references a registry source; the build is no longer hermetic"
    );
}
