#!/usr/bin/env bash
# Tier-1 gate. Must pass on a machine with no network and a cold cargo
# registry cache: the workspace has zero external dependencies (enforced
# by tests/hermetic.rs), so --offline is load-bearing, not an option.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (offline, deny warnings) =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "== hermeticity grep gate (core/analyze/isa) =="
# No wall clocks, no randomness, no hash-ordered serialization in the
# deterministic crates; see tools/check_hermetic.sh for the rationale.
tools/check_hermetic.sh

echo "== rustdoc (offline, deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps --workspace

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== tier-2: observability smoke =="
# One small observed run end to end: the trace must be valid JSONL, the
# metrics document valid JSON, and the CPI attribution must close (the
# components sum to measured CPI). trace-export must emit loadable
# Chrome trace JSON. Exercised via the release cpack binary built above.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
CPACK=target/release/cpack
"$CPACK" run pegwit 30000 \
    --trace "$OBS_TMP/run.jsonl" --metrics "$OBS_TMP/run.metrics.json" > /dev/null
"$CPACK" trace-export "$OBS_TMP/run.jsonl" --chrome -o "$OBS_TMP/run.chrome.json" > /dev/null
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]

# Every trace line parses and carries a cycle stamp and a kind tag.
with open(f"{tmp}/run.jsonl") as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert lines, "trace is empty"
assert all("c" in e and "k" in e for e in lines), "malformed trace event"

# The metrics document parses and its CPI attribution closes.
with open(f"{tmp}/run.metrics.json") as f:
    m = json.load(f)
b = m["cpi_breakdown"]
parts = ["compute", "icache_miss", "decompress", "index_lookup", "memory", "branch"]
total, s = b["total"], sum(b[p] for p in parts)
assert abs(s - total) < 1e-5, f"CPI breakdown does not close: {s} vs {total}"
assert m["counters"]["pipeline.cycles"] > 0

# The Chrome export is valid trace-event JSON.
with open(f"{tmp}/run.chrome.json") as f:
    c = json.load(f)
assert isinstance(c["traceEvents"], list) and len(c["traceEvents"]) > 4
assert all("ph" in e and "ts" in e for e in c["traceEvents"])
print(f"tier-2 obs smoke: {len(lines)} events, CPI {total:.4f} closes")
PYEOF

echo "== tier-2: matrix journal kill/resume smoke =="
# A journaled sweep killed mid-run and resumed must produce byte-identical
# JSON to an uninterrupted run — the crash-safety contract of the journal.
MTX_INSNS=3000
"$CPACK" matrix "$MTX_INSNS" --workers 2 --json \
    --journal "$OBS_TMP/journal-clean" > "$OBS_TMP/full.json" 2> /dev/null

# Second run: kill -9 once a few cells have been journaled.
"$CPACK" matrix "$MTX_INSNS" --workers 2 --json \
    --journal "$OBS_TMP/journal-killed" > /dev/null 2>&1 &
MTX_PID=$!
for _ in $(seq 1 200); do
    if [ "$(wc -l < "$OBS_TMP/journal-killed/journal.jsonl" 2>/dev/null || echo 0)" -ge 3 ]; then
        break
    fi
    sleep 0.05
done
kill -9 "$MTX_PID" 2>/dev/null || true
wait "$MTX_PID" 2>/dev/null || true

"$CPACK" matrix "$MTX_INSNS" --workers 2 --json --resume \
    --journal "$OBS_TMP/journal-killed" > "$OBS_TMP/resumed.json" 2> /dev/null
cmp "$OBS_TMP/full.json" "$OBS_TMP/resumed.json" \
    || { echo "resumed sweep diverged from uninterrupted run"; exit 1; }
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
with open(f"{tmp}/resumed.json") as f:
    r = json.load(f)
assert len(r["cells"]) == 54, f"expected the full cube, got {len(r['cells'])} cells"
assert all(c["outcome"] == "ok" for c in r["cells"])
print(f"tier-2 matrix smoke: {len(r['cells'])} cells, kill/resume byte-identical")
PYEOF

echo "== tier-2: fault campaign smoke =="
# A tiny fault-injection campaign must be byte-deterministic at any worker
# count (injection is a pure function of cycle + address, never wall
# clock), and every cell's ledger must conserve:
# injected == recovered + trapped + silent.
FLT_ARGS=(3000 --profile pegwit --rates 0,50000000 --integrity none,crc32 --json)
"$CPACK" faults "${FLT_ARGS[@]}" --workers 1 > "$OBS_TMP/faults-w1.json" 2> /dev/null
"$CPACK" faults "${FLT_ARGS[@]}" --workers 4 > "$OBS_TMP/faults-w4.json" 2> /dev/null
cmp "$OBS_TMP/faults-w1.json" "$OBS_TMP/faults-w4.json" \
    || { echo "fault campaign not worker-count deterministic"; exit 1; }
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
with open(f"{tmp}/faults-w1.json") as f:
    r = json.load(f)
cells = r["cells"]
assert len(cells) == 6, f"expected 6 cells (native, cp-opt, 2 rates x 2 integrity), got {len(cells)}"
armed = [c for c in cells if "faults_injected" in c]
assert armed, "no armed cells in the campaign"
for c in armed:
    inj, rec = c["faults_injected"], c["faults_recovered"]
    trp, sil = c["faults_trapped"], c["faults_silent"]
    assert inj == rec + trp + sil, f"{c['model']}: ledger not conserved"
    assert c["faults_detected"] == rec + trp, f"{c['model']}: detected != cured + trapped"
struck = sum(c["faults_injected"] for c in armed)
assert struck > 0, "5e-2 rate injected nothing"
# Rate 0 with no integrity must be cycle-identical to the unprotected model.
by_model = {c["model"]: c for c in cells}
assert by_model["cp-none-r0"]["cycles"] == by_model["cp-opt"]["cycles"]
print(f"tier-2 faults smoke: {len(cells)} cells, {struck} strikes, ledger conserved")
PYEOF

echo "== tier-2: sr32lint gate =="
# Every synthetic benchmark and its compressed image must lint clean, and
# the linter's *independent* static recount of the compression ratio must
# equal the codec's claim exactly and match the golden Table 3 values
# (seed 42). A corrupted ROM must fail the gate with a JSON diagnostic
# naming the faulting address.
for p in cc1 go mpeg2enc pegwit perl vortex; do
    "$CPACK" lint "$p" --json > "$OBS_TMP/lint-$p.json" \
        || { echo "lint gate failed for $p"; cat "$OBS_TMP/lint-$p.json"; exit 1; }
done
"$CPACK" compress pegwit -o "$OBS_TMP/pegwit.cpk" > /dev/null
"$CPACK" lint "$OBS_TMP/pegwit.cpk" --json > "$OBS_TMP/lint-rom.json" \
    || { echo "lint gate failed for pegwit.cpk"; exit 1; }
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
golden = {"cc1": 0.5923, "go": 0.5828, "mpeg2enc": 0.5952,
          "pegwit": 0.5895, "perl": 0.5882, "vortex": 0.5848}
for p, want in golden.items():
    with open(f"{tmp}/lint-{p}.json") as f:
        r = json.load(f)
    assert r["clean"] and r["errors"] == 0, f"{p}: lint not clean"
    ratio = r["ratio"]
    assert ratio["static_ratio"] == ratio["codec_ratio"], \
        f"{p}: static {ratio['static_ratio']} != codec {ratio['codec_ratio']}"
    assert round(ratio["static_ratio"], 4) == want, \
        f"{p}: ratio {ratio['static_ratio']:.4f} != golden {want}"
with open(f"{tmp}/lint-rom.json") as f:
    r = json.load(f)
assert r["clean"], "pegwit.cpk: rom lint not clean"
print(f"tier-2 lint smoke: 6 profiles + 1 rom clean, static ratios == golden")
PYEOF

# Corruption must be caught statically: flip index-entry bits, expect a
# nonzero exit and an error diagnostic carrying the native address.
python3 - "$OBS_TMP" <<'PYEOF'
import sys
tmp = sys.argv[1]
with open(f"{tmp}/pegwit.cpk", "rb") as f:
    b = bytearray(f.read())
hi = int.from_bytes(b[8:10], "little")
lo = int.from_bytes(b[10:12], "little")
index_at = 12 + 2 * (hi + lo) + 4
b[index_at + 4] ^= 0x55
with open(f"{tmp}/pegwit-corrupt.cpk", "wb") as f:
    f.write(b)
PYEOF
if "$CPACK" lint "$OBS_TMP/pegwit-corrupt.cpk" --json > "$OBS_TMP/lint-corrupt.json"; then
    echo "lint gate MISSED a corrupted index entry"; exit 1
fi
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
with open(f"{tmp}/lint-corrupt.json") as f:
    r = json.load(f)
assert not r["clean"] and r["errors"] > 0
assert any(d["severity"] == "error" and (d["addr"] or "").startswith("0x")
           for d in r["diagnostics"]), "no error diagnostic names an address"
print("tier-2 lint smoke: corrupted index entry detected statically")
PYEOF

echo "== tier-2: .cpk frame lint gate =="
# Every benchmark packed to a stream frame must pass the *static* frame
# linter (chunk extents, CRCs, integrity trailers, payload decode — no
# unpack), and a single flipped payload byte must fail the gate with a
# JSON diagnostic naming the damaged group.
for p in cc1 go mpeg2enc pegwit perl vortex; do
    "$CPACK" pack "$p" -o "$OBS_TMP/frame-$p.cpk" 2> /dev/null
    "$CPACK" lint "$OBS_TMP/frame-$p.cpk" --json > "$OBS_TMP/flint-$p.json" \
        || { echo "frame lint gate failed for $p"; cat "$OBS_TMP/flint-$p.json"; exit 1; }
done
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
for p in ["cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"]:
    with open(f"{tmp}/flint-{p}.json") as f:
        r = json.load(f)
    assert r["clean"] and r["errors"] == 0, f"{p}: frame lint not clean"
    for c in ["frame-header", "frame-chunk", "frame-integrity",
              "frame-payload", "frame-trailer", "decode-table-kind"]:
        assert c in r["checks_run"], f"{p}: check {c} did not run"
# Flip one payload byte of the first group of pegwit's frame.
with open(f"{tmp}/frame-pegwit.cpk", "rb") as f:
    b = bytearray(f.read())
hi = int.from_bytes(b[16:18], "little")
lo = int.from_bytes(b[18:20], "little")
payload_at = 20 + 2 * (hi + lo) + 4 + 4 + 2
b[payload_at] ^= 0x01
with open(f"{tmp}/frame-pegwit-corrupt.cpk", "wb") as f:
    f.write(b)
print("tier-2 frame lint: 6 frames clean, all frame checks ran")
PYEOF
if "$CPACK" lint "$OBS_TMP/frame-pegwit-corrupt.cpk" --json \
        > "$OBS_TMP/flint-corrupt.json"; then
    echo "frame lint gate MISSED a flipped payload byte"; exit 1
fi
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
with open(f"{tmp}/flint-corrupt.json") as f:
    r = json.load(f)
assert not r["clean"] and r["errors"] > 0
assert any("group 0" in d["message"] for d in r["diagnostics"]), \
    "no diagnostic names the damaged group"
print("tier-2 frame lint: flipped payload byte detected, group named")
PYEOF

echo "== tier-2: codec + frame fuzzer (fixed seed, both backends) =="
# Covers mutated block streams (both decode backends must agree) and
# mutated .cpk frames (one-shot serial, one-shot parallel, and the
# streaming reader must reach the same typed verdict — never a panic).
cargo test -q --offline --test fuzz_codec

echo "== tier-2: .cpk frame round-trip smoke =="
# The frame pipeline's determinism contract, end to end through the
# binary: packing at any worker count is byte-identical, unpack restores
# the exact instruction stream, re-packing the unpacked words reproduces
# the frame, cat streams the same bytes, and a truncated frame is
# rejected with a nonzero exit and a typed message.
"$CPACK" pack pegwit -o "$OBS_TMP/pegwit-w1.cpk" --workers 1 2> /dev/null
"$CPACK" pack pegwit -o "$OBS_TMP/pegwit-w4.cpk" --workers 4 2> /dev/null
cmp "$OBS_TMP/pegwit-w1.cpk" "$OBS_TMP/pegwit-w4.cpk" \
    || { echo "frame pack not worker-count byte-identical"; exit 1; }
"$CPACK" unpack "$OBS_TMP/pegwit-w1.cpk" -o "$OBS_TMP/pegwit-text.bin" 2> /dev/null
"$CPACK" pack "$OBS_TMP/pegwit-text.bin" -o "$OBS_TMP/pegwit-repack.cpk" 2> /dev/null
cmp "$OBS_TMP/pegwit-w1.cpk" "$OBS_TMP/pegwit-repack.cpk" \
    || { echo "pack(unpack(frame)) is not byte-stable"; exit 1; }
"$CPACK" cat "$OBS_TMP/pegwit-w1.cpk" 2> /dev/null | cmp - "$OBS_TMP/pegwit-text.bin" \
    || { echo "cat and unpack disagree"; exit 1; }
head -c 40 "$OBS_TMP/pegwit-w1.cpk" > "$OBS_TMP/pegwit-truncated.cpk"
if "$CPACK" unpack "$OBS_TMP/pegwit-truncated.cpk" -o /dev/null 2> "$OBS_TMP/trunc.err"; then
    echo "unpack ACCEPTED a truncated frame"; exit 1
fi
grep -q "truncated" "$OBS_TMP/trunc.err" \
    || { echo "truncated frame not reported as truncation"; exit 1; }
echo "tier-2 frame smoke: worker-identical pack, byte-stable round trip, truncation rejected"

echo "== tier-2: codec scorecard gate (decode + frame) =="
# A fresh smoke run of the codec bench must show the fast backend beating
# the scalar reference on every profile, and the checked-in full-mode
# BENCH_codec.json must carry the >= 2x speedup the fast path promises.
# frame_throughput merges its serial-vs-parallel .cpk section into the
# same document; its parallel-speedup floor is core-count aware (the
# validator skips it when the recorded cpus < workers, since a one-CPU
# runner cannot exhibit parallel speedup).
TESTKIT_BENCH_FAST=1 BENCH_CODEC_OUT="$OBS_TMP/bench_codec.json" \
    cargo bench -q --offline -p codepack-bench --bench decode_throughput > /dev/null
TESTKIT_BENCH_FAST=1 BENCH_CODEC_OUT="$OBS_TMP/bench_codec.json" \
    cargo bench -q --offline -p codepack-bench --bench frame_throughput > /dev/null
# One validator (tools/validate_bench.py) checks both documents, so the
# schema_version-1 scorecard schema is enforced in exactly one place.
# Fresh smoke run: fast must outrun scalar on every profile, right now,
# on this machine — catches hot-path regressions before they land.
python3 tools/validate_bench.py "$OBS_TMP/bench_codec.json" --mode smoke \
    --fast-beats-scalar --require-frame --min-parallel-speedup 2.0
# Checked-in scorecard: schema-valid full-mode numbers with >= 2x each.
python3 tools/validate_bench.py BENCH_codec.json --mode full --min-speedup 2.0 \
    --require-frame --min-parallel-speedup 2.0

echo "== tier-2: block profiler smoke =="
# A profiled run must emit a schema-valid versioned artifact that is
# byte-identical across worker counts at the fixed seed (the input
# contract of the profile-guided compressor), and the armed profiler must
# stay inside its overhead budget.
"$CPACK" profile pegwit 30000 --workers 1 --out "$OBS_TMP/prof-w1.json" > /dev/null 2>&1
"$CPACK" profile pegwit 30000 --workers 4 --out "$OBS_TMP/prof-w4.json" > /dev/null 2>&1
cmp "$OBS_TMP/prof-w1.json" "$OBS_TMP/prof-w4.json" \
    || { echo "profile artifact not worker-count deterministic"; exit 1; }
"$CPACK" profile --diff "$OBS_TMP/prof-w1.json" "$OBS_TMP/prof-w4.json" \
    | grep -q "byte-identical" || { echo "profile --diff missed identity"; exit 1; }
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
with open(f"{tmp}/prof-w1.json") as f:
    p = json.load(f)
assert p["schema"] == "cpack-block-profile", p.get("schema")
assert p["schema_version"] == 1, p.get("schema_version")
assert p["total_blocks"] > 0 and p["blocks"], "profile is empty"
for b in p["blocks"]:
    assert b["fetches"] >= b["buffer_hits"], f"block {b['block']}: hits exceed fetches"
    misses = b["fetches"] - b["buffer_hits"]
    assert b["miss_cycles"]["count"] == misses, \
        f"block {b['block']}: histogram count != misses"
touched = len(p["blocks"])
fetches = sum(b["fetches"] for b in p["blocks"])
print(f"tier-2 profile smoke: {touched}/{p['total_blocks']} blocks, "
      f"{fetches} fetches, worker-count byte-identical")
PYEOF
TESTKIT_BENCH_FAST=1 \
    cargo bench -q --offline -p codepack-bench --bench profile_overhead > /dev/null \
    || { echo "profile overhead budget exceeded"; exit 1; }

echo "== tier-2: service smoke (cpackd + loadgen) =="
# The cpackd robustness contract, end to end through the real daemon:
# a >=100k-request fixed-seed loadgen against a live cpackd must resolve
# every request exactly once with zero mismatches; kill -9 of the daemon
# mid-run must surface as typed connection failures and a nonzero
# loadgen exit (never a hang, never a wrong answer); a restarted daemon
# must serve the same seed to completion; chaos mode (worker kills, torn
# frames, garbage bytes, burn bursts) must still lose nothing. One
# validator (tools/validate_bench.py --require-service) checks the fresh
# scorecard and the checked-in BENCH_service.json.
CPACKD=target/release/cpackd
SVC_PORT=7311

# cpackd serves until stdin closes; the fifo held open on fd 8 is its
# lifeline, so `exec 8>&-` is a graceful drain and kill -9 is the crash.
mkfifo "$OBS_TMP/svc.stdin"
"$CPACKD" --addr "127.0.0.1:$SVC_PORT" < "$OBS_TMP/svc.stdin" \
    > "$OBS_TMP/svc.log" 2>&1 &
SVC_PID=$!
exec 8> "$OBS_TMP/svc.stdin"
for _ in $(seq 1 100); do
    grep -q "cpackd: listening" "$OBS_TMP/svc.log" 2>/dev/null && break
    sleep 0.05
done
grep -q "cpackd: listening" "$OBS_TMP/svc.log" \
    || { echo "cpackd never came up"; cat "$OBS_TMP/svc.log"; exit 1; }

# Full fixed-seed drive: 100k requests, every response checked against
# the library's answer, scorecard schema-validated.
"$CPACK" loadgen --requests 100000 --clients 4 --seed 42 \
    --connect "127.0.0.1:$SVC_PORT" --out "$OBS_TMP/bench_service.json" \
    2> /dev/null \
    || { echo "loadgen against live cpackd failed"; exit 1; }
python3 tools/validate_bench.py "$OBS_TMP/bench_service.json" \
    --mode smoke --require-service

# Crash the daemon mid-run: the in-flight loadgen must exit nonzero with
# typed connection failures — lost responses would fail validation
# before the exit code is even consulted.
"$CPACK" loadgen --requests 100000 --clients 4 --seed 43 \
    --connect "127.0.0.1:$SVC_PORT" --out "$OBS_TMP/bench_killed.json" \
    > /dev/null 2> "$OBS_TMP/loadgen-killed.err" &
LG_PID=$!
sleep 1
kill -9 "$SVC_PID" 2>/dev/null || true
wait "$SVC_PID" 2>/dev/null || true
if wait "$LG_PID"; then
    echo "loadgen exited 0 despite a kill -9'd daemon"; exit 1
fi
grep -q "connection failures" "$OBS_TMP/loadgen-killed.err" \
    || { echo "killed daemon not reported as typed connection failures"; \
         cat "$OBS_TMP/loadgen-killed.err"; exit 1; }
exec 8>&-

# Restart (fresh port dodges TIME_WAIT) and re-drive the same seed.
SVC_PORT2=7312
mkfifo "$OBS_TMP/svc2.stdin"
"$CPACKD" --addr "127.0.0.1:$SVC_PORT2" < "$OBS_TMP/svc2.stdin" \
    > "$OBS_TMP/svc2.log" 2>&1 &
SVC2_PID=$!
exec 8> "$OBS_TMP/svc2.stdin"
for _ in $(seq 1 100); do
    grep -q "cpackd: listening" "$OBS_TMP/svc2.log" 2>/dev/null && break
    sleep 0.05
done
"$CPACK" loadgen --requests 20000 --clients 4 --seed 43 \
    --connect "127.0.0.1:$SVC_PORT2" --out /dev/null 2> /dev/null \
    || { echo "restarted cpackd could not serve the re-driven workload"; exit 1; }
exec 8>&-
wait "$SVC2_PID" 2>/dev/null || true

# Chaos run (in-process server): worker kills, garbage, torn frames and
# burn bursts riding alongside the workload — still zero lost, zero
# mismatched, or loadgen itself exits nonzero.
"$CPACK" loadgen --requests 20000 --clients 4 --seed 42 --chaos \
    --out "$OBS_TMP/bench_chaos.json" 2> /dev/null \
    || { echo "chaos loadgen violated the zero-loss contract"; exit 1; }
python3 tools/validate_bench.py "$OBS_TMP/bench_chaos.json" \
    --mode smoke --require-service

# Checked-in scorecard: schema-valid full-mode numbers.
python3 tools/validate_bench.py BENCH_service.json --mode full --require-service
echo "tier-2 service smoke: 100k live + kill -9 typed + restart + chaos clean"

echo "ci: all green"
