#!/usr/bin/env bash
# Tier-1 gate. Must pass on a machine with no network and a cold cargo
# registry cache: the workspace has zero external dependencies (enforced
# by tests/hermetic.rs), so --offline is load-bearing, not an option.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "ci: all green"
